//! A small optimizing compiler for WHILE with seeded defects.
//!
//! This is the stand-in for CompCert and the Scala compilers in the
//! paper's generality experiments (§5.3): a second, independent language
//! toolchain that SPE can differential-test. The compiler lowers WHILE to
//! a stack machine with (optionally) constant folding, dead-branch
//! elimination and a naive copy-propagation pass; *bug profiles* inject
//! deterministic, pattern-triggered defects modeled on the paper's case
//! studies (e.g. the `operand_equal_p` crash of GCC bug 69801 appears
//! here as a folding crash on structurally identical operands).

use crate::{AExpr, BExpr, Outcome, WProgram, WRuntimeError, WState, WStmt};
use std::collections::BTreeMap;
use std::fmt;

/// Stack-machine instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Push a constant.
    Push(i64),
    /// Push variable `slot`.
    Load(usize),
    /// Pop into variable `slot`.
    Store(usize),
    /// Pop two, push `a + b`.
    Add,
    /// Pop two, push `a - b`.
    Sub,
    /// Pop two, push `a * b`.
    Mul,
    /// Pop two, push `a < b`.
    Lt,
    /// Pop two, push `a <= b`.
    Le,
    /// Pop two, push `a == b`.
    Eq,
    /// Pop one, push logical negation.
    Not,
    /// Unconditional jump.
    Jmp(usize),
    /// Pop; jump if zero.
    Jz(usize),
    /// Stop.
    Halt,
}

/// A compiled WHILE program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compiled {
    /// Instruction stream.
    pub instrs: Vec<Instr>,
    /// Variable names, indexed by slot.
    pub vars: Vec<String>,
}

/// Which seeded defect set the compiler runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugProfile {
    /// No injected bugs — the reference configuration.
    None,
    /// CompCert-like profile: frontend/folding crashes.
    CompCertSim,
    /// Scala-like profile: typer crash + a miscompiling copy propagation.
    ScalaSim,
}

/// Compiler crash ("internal compiler error"), the analogue of the
/// paper's crash bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalError {
    /// Pass that crashed.
    pub pass: &'static str,
    /// Assertion-style message — crash *signature* for deduplication.
    pub message: String,
}

impl fmt::Display for InternalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "internal compiler error: in {}: {}",
            self.pass, self.message
        )
    }
}

impl std::error::Error for InternalError {}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// 0 = no optimization, 1 = folding + dead branches, 2 = + copy prop.
    pub opt_level: u8,
    /// Injected defect set.
    pub profile: BugProfile,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            opt_level: 1,
            profile: BugProfile::None,
        }
    }
}

/// Compiles a WHILE program.
///
/// # Errors
///
/// Returns [`InternalError`] when an injected defect's trigger pattern is
/// met (a compiler crash).
///
/// # Examples
///
/// ```
/// use spe_while::{parse, compiler};
///
/// let p = parse("a := 10; b := 1; while a do a := a - b")?;
/// let c = compiler::compile(&p, compiler::Options::default())?;
/// let out = compiler::execute(&c, 10_000)?;
/// assert!(matches!(out, spe_while::Outcome::Finished(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(p: &WProgram, opts: Options) -> Result<Compiled, InternalError> {
    // The observable state is the *original* variable set: optimization
    // may fold every reference to a variable away, but it still exists
    // (and is zero) in the program's semantics.
    let vars = p.variables();
    let mut program = p.clone();
    if opts.opt_level >= 1 {
        program = fold_program(&program, opts.profile)?;
    }
    if opts.opt_level >= 2 {
        program = copy_propagate(&program, opts.profile)?;
    }
    lower(&program, vars, opts.profile)
}

/// Executes a compiled program on the stack VM with a fuel bound.
///
/// # Errors
///
/// Returns [`WRuntimeError`] on arithmetic overflow or a corrupt stack
/// (which would itself indicate a codegen bug).
pub fn execute(c: &Compiled, fuel: u64) -> Result<Outcome, WRuntimeError> {
    let mut slots = vec![0i64; c.vars.len()];
    let mut stack: Vec<i64> = Vec::new();
    let mut pc = 0usize;
    let mut remaining = fuel;
    loop {
        if remaining == 0 {
            return Ok(Outcome::Timeout);
        }
        remaining -= 1;
        let Some(instr) = c.instrs.get(pc) else {
            return Err(WRuntimeError(format!("pc {pc} out of bounds")));
        };
        pc += 1;
        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .ok_or_else(|| WRuntimeError("stack underflow".into()))?
            };
        }
        match instr {
            Instr::Push(v) => stack.push(*v),
            Instr::Load(s) => stack.push(slots[*s]),
            Instr::Store(s) => {
                let v = pop!();
                slots[*s] = v;
            }
            Instr::Add => {
                let b = pop!();
                let a = pop!();
                stack.push(
                    a.checked_add(b)
                        .ok_or_else(|| WRuntimeError("arithmetic overflow".into()))?,
                );
            }
            Instr::Sub => {
                let b = pop!();
                let a = pop!();
                stack.push(
                    a.checked_sub(b)
                        .ok_or_else(|| WRuntimeError("arithmetic overflow".into()))?,
                );
            }
            Instr::Mul => {
                let b = pop!();
                let a = pop!();
                stack.push(
                    a.checked_mul(b)
                        .ok_or_else(|| WRuntimeError("arithmetic overflow".into()))?,
                );
            }
            Instr::Lt => {
                let b = pop!();
                let a = pop!();
                stack.push((a < b) as i64);
            }
            Instr::Le => {
                let b = pop!();
                let a = pop!();
                stack.push((a <= b) as i64);
            }
            Instr::Eq => {
                let b = pop!();
                let a = pop!();
                stack.push((a == b) as i64);
            }
            Instr::Not => {
                let a = pop!();
                stack.push((a == 0) as i64);
            }
            Instr::Jmp(t) => pc = *t,
            Instr::Jz(t) => {
                let v = pop!();
                if v == 0 {
                    pc = *t;
                }
            }
            Instr::Halt => {
                let mut state: WState = BTreeMap::new();
                for (i, name) in c.vars.iter().enumerate() {
                    state.insert(name.clone(), slots[i]);
                }
                return Ok(Outcome::Finished(state));
            }
        }
    }
}

// ----- optimization passes ---------------------------------------------

/// Structural equality ignoring occurrence ids — the analogue of GCC's
/// `operand_equal_p`.
fn operand_equal(a: &AExpr, b: &AExpr) -> bool {
    match (a, b) {
        (AExpr::Var(x, _), AExpr::Var(y, _)) => x == y,
        (AExpr::Num(x), AExpr::Num(y)) => x == y,
        (AExpr::Op(c, a1, a2), AExpr::Op(d, b1, b2)) => {
            c == d && operand_equal(a1, b1) && operand_equal(a2, b2)
        }
        _ => false,
    }
}

fn fold_a(e: &AExpr, profile: BugProfile) -> Result<AExpr, InternalError> {
    match e {
        AExpr::Var(..) | AExpr::Num(_) => Ok(e.clone()),
        AExpr::Op(c, a, b) => {
            let a = fold_a(a, profile)?;
            let b = fold_a(b, profile)?;
            // Injected CompCert-like crash: folding `e - e` of two
            // structurally identical *compound* operands hits an
            // assertion (modeled on GCC bug 69801 / CompCert bug 125).
            if profile == BugProfile::CompCertSim
                && *c == '-'
                && matches!(a, AExpr::Op(..))
                && operand_equal(&a, &b)
            {
                return Err(InternalError {
                    pass: "fold_aexpr",
                    message: "assertion `!operand_address_compare` failed".into(),
                });
            }
            match (&a, &b) {
                (AExpr::Num(x), AExpr::Num(y)) => {
                    let v = match c {
                        '+' => x.checked_add(*y),
                        '-' => x.checked_sub(*y),
                        '*' => x.checked_mul(*y),
                        _ => None,
                    };
                    match v {
                        Some(v) => Ok(AExpr::Num(v)),
                        None => Ok(AExpr::Op(*c, Box::new(a), Box::new(b))),
                    }
                }
                // x - x => 0 (sound: WHILE expressions are effect-free).
                _ if *c == '-' && operand_equal(&a, &b) => Ok(AExpr::Num(0)),
                // x * 0 / 0 * x => 0, x * 1 / 1 * x => x, x + 0 => x.
                (_, AExpr::Num(0)) if *c == '*' => Ok(AExpr::Num(0)),
                (AExpr::Num(0), _) if *c == '*' => Ok(AExpr::Num(0)),
                (_, AExpr::Num(1)) if *c == '*' => Ok(a),
                (AExpr::Num(1), _) if *c == '*' => Ok(b),
                (_, AExpr::Num(0)) if *c == '+' || *c == '-' => Ok(a),
                (AExpr::Num(0), _) if *c == '+' => Ok(b),
                _ => Ok(AExpr::Op(*c, Box::new(a), Box::new(b))),
            }
        }
    }
}

fn fold_b(e: &BExpr, profile: BugProfile) -> Result<BExpr, InternalError> {
    Ok(match e {
        BExpr::Const(_) => e.clone(),
        BExpr::Not(b) => match fold_b(b, profile)? {
            BExpr::Const(v) => BExpr::Const(!v),
            other => BExpr::Not(Box::new(other)),
        },
        BExpr::Logic(and, a, b) => {
            let a = fold_b(a, profile)?;
            let b = fold_b(b, profile)?;
            match (*and, &a, &b) {
                (true, BExpr::Const(false), _) | (true, _, BExpr::Const(false)) => {
                    BExpr::Const(false)
                }
                (true, BExpr::Const(true), _) => b,
                (true, _, BExpr::Const(true)) => a,
                (false, BExpr::Const(true), _) | (false, _, BExpr::Const(true)) => {
                    BExpr::Const(true)
                }
                (false, BExpr::Const(false), _) => b,
                (false, _, BExpr::Const(false)) => a,
                _ => BExpr::Logic(*and, Box::new(a), Box::new(b)),
            }
        }
        BExpr::Rel(op, a, b) => {
            let a = fold_a(a, profile)?;
            let b = fold_a(b, profile)?;
            match (&a, &b) {
                (AExpr::Num(x), AExpr::Num(y)) => BExpr::Const(match *op {
                    "<" => x < y,
                    "<=" => x <= y,
                    _ => x == y,
                }),
                _ => BExpr::Rel(op, Box::new(a), Box::new(b)),
            }
        }
        BExpr::Truthy(a) => match fold_a(a, profile)? {
            AExpr::Num(v) => BExpr::Const(v != 0),
            other => BExpr::Truthy(Box::new(other)),
        },
    })
}

fn first_read_var(b: &BExpr) -> Option<String> {
    fn walk(e: &AExpr, found: &mut Option<String>) {
        if found.is_some() {
            return;
        }
        match e {
            AExpr::Var(n, _) => *found = Some(n.clone()),
            AExpr::Num(_) => {}
            AExpr::Op(_, a, b) => {
                walk(a, found);
                walk(b, found);
            }
        }
    }
    let mut found = None;
    match b {
        BExpr::Const(_) => {}
        BExpr::Not(inner) => return first_read_var(inner),
        BExpr::Logic(_, a, _) => return first_read_var(a),
        BExpr::Rel(_, a, b2) => {
            walk(a, &mut found);
            if found.is_none() {
                walk(b2, &mut found);
            }
        }
        BExpr::Truthy(a) => walk(a, &mut found),
    }
    found
}

fn fold_stmts(stmts: &[WStmt], profile: BugProfile) -> Result<Vec<WStmt>, InternalError> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            WStmt::Assign(n, o, e) => out.push(WStmt::Assign(n.clone(), *o, fold_a(e, profile)?)),
            WStmt::Skip => {}
            WStmt::While(b, body) => {
                let b = fold_b(b, profile)?;
                // Injected Scala-like "typer" crash: a while loop whose
                // condition's first-read variable is immediately
                // reassigned as the first statement of the body (modeled
                // on Dotty issue 1637's self-referential pattern).
                if profile == BugProfile::ScalaSim {
                    if let (Some(cv), Some(WStmt::Assign(an, _, _))) =
                        (first_read_var(&b), body.first())
                    {
                        if cv == *an {
                            return Err(InternalError {
                                pass: "typer",
                                message: "assertion failed: denotation of looped symbol".into(),
                            });
                        }
                    }
                }
                if matches!(b, BExpr::Const(false)) {
                    continue; // dead loop
                }
                out.push(WStmt::While(b, fold_stmts(body, profile)?));
            }
            WStmt::If(b, t, e) => {
                let b = fold_b(b, profile)?;
                match b {
                    BExpr::Const(true) => out.extend(fold_stmts(t, profile)?),
                    BExpr::Const(false) => out.extend(fold_stmts(e, profile)?),
                    _ => out.push(WStmt::If(
                        b,
                        fold_stmts(t, profile)?,
                        fold_stmts(e, profile)?,
                    )),
                }
            }
        }
    }
    Ok(out)
}

fn fold_program(p: &WProgram, profile: BugProfile) -> Result<WProgram, InternalError> {
    Ok(WProgram {
        stmts: fold_stmts(&p.stmts, profile)?,
        max_occ: p.max_occ,
    })
}

fn subst_var_a(e: &AExpr, from: &str, to: &str) -> AExpr {
    match e {
        AExpr::Var(n, o) if n == from => AExpr::Var(to.to_string(), *o),
        AExpr::Var(..) | AExpr::Num(_) => e.clone(),
        AExpr::Op(c, a, b) => AExpr::Op(
            *c,
            Box::new(subst_var_a(a, from, to)),
            Box::new(subst_var_a(b, from, to)),
        ),
    }
}

fn subst_var_b(e: &BExpr, from: &str, to: &str) -> BExpr {
    match e {
        BExpr::Const(_) => e.clone(),
        BExpr::Not(b) => BExpr::Not(Box::new(subst_var_b(b, from, to))),
        BExpr::Logic(and, a, b) => BExpr::Logic(
            *and,
            Box::new(subst_var_b(a, from, to)),
            Box::new(subst_var_b(b, from, to)),
        ),
        BExpr::Rel(op, a, b) => BExpr::Rel(
            op,
            Box::new(subst_var_a(a, from, to)),
            Box::new(subst_var_a(b, from, to)),
        ),
        BExpr::Truthy(a) => BExpr::Truthy(Box::new(subst_var_a(a, from, to))),
    }
}

/// Naive top-level copy propagation. With [`BugProfile::ScalaSim`] the
/// pass is *deliberately wrong*: after `x := y` it rewrites reads of `x`
/// in the next statement even when that statement is a loop that
/// reassigns `x` — a seeded wrong-code defect for differential testing.
fn copy_propagate(p: &WProgram, profile: BugProfile) -> Result<WProgram, InternalError> {
    let mut stmts = p.stmts.clone();
    let mut i = 0;
    while i + 1 < stmts.len() {
        let copy = match &stmts[i] {
            WStmt::Assign(x, _, AExpr::Var(y, _)) if x != y => Some((x.clone(), y.clone())),
            _ => None,
        };
        if let Some((x, y)) = copy {
            let next = &stmts[i + 1];
            let safe = match next {
                WStmt::Assign(n, _, _) => n != &x && n != &y,
                // The sound pass refuses loops (x or y may be written in
                // the body); the buggy profile propagates anyway.
                WStmt::While(..) => profile == BugProfile::ScalaSim,
                _ => false,
            };
            if safe {
                stmts[i + 1] = match next {
                    WStmt::Assign(n, o, e) => WStmt::Assign(n.clone(), *o, subst_var_a(e, &x, &y)),
                    WStmt::While(b, body) => WStmt::While(
                        subst_var_b(b, &x, &y),
                        body.clone(), // body untouched: the miscompile
                    ),
                    other => other.clone(),
                };
            }
        }
        i += 1;
    }
    Ok(WProgram {
        stmts,
        max_occ: p.max_occ,
    })
}

// ----- lowering -----------------------------------------------------------

fn lower(
    p: &WProgram,
    mut vars: Vec<String>,
    profile: BugProfile,
) -> Result<Compiled, InternalError> {
    // Optimization never introduces variables, but be defensive.
    for v in p.variables() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    let slot_of = |name: &str| -> Result<usize, InternalError> {
        vars.iter().position(|v| v == name).ok_or(InternalError {
            pass: "lower",
            message: format!("unbound variable `{name}`"),
        })
    };
    let mut instrs = Vec::new();
    lower_seq(&p.stmts, &slot_of, &mut instrs, profile)?;
    instrs.push(Instr::Halt);
    Ok(Compiled { instrs, vars })
}

// `profile` is threaded through for future per-construct bug injection.
#[allow(clippy::only_used_in_recursion)]
fn lower_seq(
    stmts: &[WStmt],
    slot_of: &dyn Fn(&str) -> Result<usize, InternalError>,
    out: &mut Vec<Instr>,
    profile: BugProfile,
) -> Result<(), InternalError> {
    for s in stmts {
        match s {
            WStmt::Assign(n, _, e) => {
                lower_a(e, slot_of, out)?;
                out.push(Instr::Store(slot_of(n)?));
            }
            WStmt::Skip => {}
            WStmt::While(b, body) => {
                let top = out.len();
                lower_b(b, slot_of, out)?;
                let jz_at = out.len();
                out.push(Instr::Jz(usize::MAX));
                lower_seq(body, slot_of, out, profile)?;
                out.push(Instr::Jmp(top));
                let end = out.len();
                out[jz_at] = Instr::Jz(end);
            }
            WStmt::If(b, t, e) => {
                lower_b(b, slot_of, out)?;
                let jz_at = out.len();
                out.push(Instr::Jz(usize::MAX));
                lower_seq(t, slot_of, out, profile)?;
                let jmp_at = out.len();
                out.push(Instr::Jmp(usize::MAX));
                let else_at = out.len();
                out[jz_at] = Instr::Jz(else_at);
                lower_seq(e, slot_of, out, profile)?;
                let end = out.len();
                out[jmp_at] = Instr::Jmp(end);
            }
        }
    }
    Ok(())
}

fn lower_a(
    e: &AExpr,
    slot_of: &dyn Fn(&str) -> Result<usize, InternalError>,
    out: &mut Vec<Instr>,
) -> Result<(), InternalError> {
    match e {
        AExpr::Var(n, _) => out.push(Instr::Load(slot_of(n)?)),
        AExpr::Num(v) => out.push(Instr::Push(*v)),
        AExpr::Op(c, a, b) => {
            lower_a(a, slot_of, out)?;
            lower_a(b, slot_of, out)?;
            out.push(match c {
                '+' => Instr::Add,
                '-' => Instr::Sub,
                _ => Instr::Mul,
            });
        }
    }
    Ok(())
}

fn lower_b(
    e: &BExpr,
    slot_of: &dyn Fn(&str) -> Result<usize, InternalError>,
    out: &mut Vec<Instr>,
) -> Result<(), InternalError> {
    match e {
        BExpr::Const(v) => out.push(Instr::Push(*v as i64)),
        BExpr::Not(b) => {
            lower_b(b, slot_of, out)?;
            out.push(Instr::Not);
        }
        BExpr::Logic(and, a, b) => {
            // Non-short-circuit lowering: evaluate both, combine.
            lower_b(a, slot_of, out)?;
            lower_b(b, slot_of, out)?;
            if *and {
                out.push(Instr::Mul); // both non-zero (0/1 operands)
            } else {
                out.push(Instr::Add);
                out.push(Instr::Push(0));
                out.push(Instr::Eq);
                out.push(Instr::Not);
            }
        }
        BExpr::Rel(op, a, b) => {
            lower_a(a, slot_of, out)?;
            lower_a(b, slot_of, out)?;
            out.push(match *op {
                "<" => Instr::Lt,
                "<=" => Instr::Le,
                _ => Instr::Eq,
            });
        }
        BExpr::Truthy(a) => {
            lower_a(a, slot_of, out)?;
            out.push(Instr::Push(0));
            out.push(Instr::Eq);
            out.push(Instr::Not);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{interpret, parse};

    fn run_both(src: &str, opts: Options) -> (Outcome, Outcome) {
        let p = parse(src).expect("parses");
        let reference = interpret(&p, 100_000).expect("reference runs");
        let compiled = compile(&p, opts).expect("compiles");
        let vm = execute(&compiled, 1_000_000).expect("executes");
        (reference, vm)
    }

    #[test]
    fn compiled_matches_interpreter_unoptimized() {
        let srcs = [
            "a := 10; b := 1; while a do a := a - b",
            "i := 0; s := 0; while i < 7 do begin s := s + i * i; i := i + 1 end",
            "x := 3; if x < 5 then y := 1 else y := 2; z := x + y * 2",
            "x := 5; if not (x = 5) then y := 1 else y := 9",
            "a := 2; b := 3; if a < b and b < 10 then c := 1 else c := 0",
            "a := 2; b := 3; if a = 9 or b = 3 then c := 7 else c := 0",
        ];
        for src in srcs {
            let (r, v) = run_both(
                src,
                Options {
                    opt_level: 0,
                    profile: BugProfile::None,
                },
            );
            assert_eq!(r, v, "{src}");
        }
    }

    #[test]
    fn compiled_matches_interpreter_optimized() {
        let srcs = [
            "a := 10; b := 1; while a do a := a - b",
            "x := 4; y := x - x; if y = 0 then z := 1 else z := 2",
            "x := 2 + 3 * 4; if true and x < 20 then y := x else y := 0",
            "x := 1; if false then y := 9 else y := x * 1 + 0",
        ];
        for src in srcs {
            let (r, v) = run_both(
                src,
                Options {
                    opt_level: 1,
                    profile: BugProfile::None,
                },
            );
            assert_eq!(r, v, "{src}");
        }
    }

    #[test]
    fn sound_copy_propagation_preserves_semantics() {
        let src = "a := 5; b := a; c := b + 1";
        let (r, v) = run_both(
            src,
            Options {
                opt_level: 2,
                profile: BugProfile::None,
            },
        );
        assert_eq!(r, v);
    }

    #[test]
    fn compcert_profile_crashes_on_identical_compound_operands() {
        // (a + b) - (a + b): identical compound operands under `-`.
        let p = parse("a := 1; b := 2; c := (a + b) - (a + b)").expect("parses");
        let err = compile(
            &p,
            Options {
                opt_level: 1,
                profile: BugProfile::CompCertSim,
            },
        )
        .expect_err("must crash");
        assert_eq!(err.pass, "fold_aexpr");
    }

    #[test]
    fn compcert_profile_is_fine_on_simple_subtraction() {
        let p = parse("a := 1; b := 2; c := a - b").expect("parses");
        assert!(compile(
            &p,
            Options {
                opt_level: 1,
                profile: BugProfile::CompCertSim,
            }
        )
        .is_ok());
    }

    #[test]
    fn scala_profile_typer_crash() {
        // Condition reads `a`; body's first statement reassigns `a`.
        let p = parse("a := 3; while a do a := a - 1").expect("parses");
        let err = compile(
            &p,
            Options {
                opt_level: 1,
                profile: BugProfile::ScalaSim,
            },
        )
        .expect_err("must crash");
        assert_eq!(err.pass, "typer");
    }

    #[test]
    fn scala_profile_miscompiles_copy_into_loop() {
        // After `x := y`, the loop reassigns x; the buggy pass rewrites
        // the condition to read y, changing behaviour. (The body's first
        // statement assigns `s`, so the typer-crash pattern of this
        // profile does not fire.)
        let src = "y := 0; x := y; while x < 3 do begin s := s + 1; x := x + 1 end";
        let p = parse(src).expect("parses");
        let reference = interpret(&p, 100_000).expect("reference");
        let compiled = compile(
            &p,
            Options {
                opt_level: 2,
                profile: BugProfile::ScalaSim,
            },
        )
        .expect("compiles");
        let vm = execute(&compiled, 10_000).expect("runs or times out");
        assert_ne!(reference, vm, "seeded wrong-code bug must manifest");
    }

    #[test]
    fn clean_profile_not_affected_by_bug_patterns() {
        let srcs = [
            "a := 1; b := 2; c := (a + b) - (a + b)",
            "a := 3; while a do a := a - 1",
            "y := 0; x := y; while x < 3 do begin x := x + 1; s := s + 1 end",
        ];
        for src in srcs {
            let (r, v) = run_both(
                src,
                Options {
                    opt_level: 2,
                    profile: BugProfile::None,
                },
            );
            assert_eq!(r, v, "{src}");
        }
    }

    #[test]
    fn dead_while_is_removed_but_semantics_hold() {
        let (r, v) = run_both(
            "x := 1; while false do x := 99; y := x",
            Options {
                opt_level: 1,
                profile: BugProfile::None,
            },
        );
        assert_eq!(r, v);
    }

    #[test]
    fn timeout_propagates_through_vm() {
        let p = parse("x := 1; while true do x := x + 0").expect("parses");
        let c = compile(
            &p,
            Options {
                opt_level: 0,
                profile: BugProfile::None,
            },
        )
        .expect("compiles");
        assert_eq!(execute(&c, 100).expect("runs"), Outcome::Timeout);
    }
}
