//! The WHILE language of the SPE paper (§3), plus a small optimizing
//! compiler with injected defects.
//!
//! The paper formalizes skeletal program enumeration on a WHILE-style
//! language (Figure 4): arithmetic and boolean expressions, assignment,
//! sequencing, `while` and `if`. All variables are global, so the hole
//! variable set of every hole is the full variable set — SPE degenerates
//! to plain set-partition enumeration (Bell numbers).
//!
//! The crate also ships [`compiler`], a tiny stack-machine compiler with
//! seeded bugs. It plays the role CompCert and the two Scala compilers
//! play in §5.3 of the paper: a *second* language toolchain demonstrating
//! that SPE generalizes beyond C.
//!
//! # Quick start
//!
//! ```
//! use spe_while::{parse, interpret, Outcome};
//!
//! // Figure 5(a) of the paper.
//! let p = parse("a := 10; b := 1; while a do a := a - b")?;
//! match interpret(&p, 10_000)? {
//!     Outcome::Finished(state) => {
//!         assert_eq!(state.get("a"), Some(&0));
//!         assert_eq!(state.get("b"), Some(&1));
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

pub mod compiler;

/// Unique id of a variable occurrence (a hole of the skeleton).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WOcc(pub u32);

/// Arithmetic expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AExpr {
    /// Variable read.
    Var(String, WOcc),
    /// Integer constant.
    Num(i64),
    /// `a1 op a2` with `op ∈ {+, -, *}`.
    Op(char, Box<AExpr>, Box<AExpr>),
}

/// Boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// `true` / `false`.
    Const(bool),
    /// `not b`.
    Not(Box<BExpr>),
    /// `b1 and b2` (`true`) / `b1 or b2` (`false`).
    Logic(bool, Box<BExpr>, Box<BExpr>),
    /// `a1 < a2`, `a1 <= a2`, `a1 = a2`.
    Rel(&'static str, Box<AExpr>, Box<AExpr>),
    /// Truthiness of an arithmetic expression (`while a do …`).
    Truthy(Box<AExpr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum WStmt {
    /// `x := a`.
    Assign(String, WOcc, AExpr),
    /// `skip`.
    Skip,
    /// `while b do S`.
    While(BExpr, Vec<WStmt>),
    /// `if b then S1 else S2`.
    If(BExpr, Vec<WStmt>, Vec<WStmt>),
}

/// A WHILE program: a statement sequence plus occurrence bookkeeping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WProgram {
    /// Top-level statements.
    pub stmts: Vec<WStmt>,
    /// Number of occurrence ids handed out.
    pub max_occ: u32,
}

impl WProgram {
    /// All distinct variable names, in order of first occurrence.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.for_each_occ(&mut |name, _| {
            if !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
        });
        out
    }

    /// Visits `(name, occ)` for every variable occurrence in source order.
    pub fn for_each_occ<'s, F: FnMut(&'s str, WOcc)>(&'s self, f: &mut F) {
        for s in &self.stmts {
            visit_stmt(s, f);
        }
    }

    /// Renames occurrences according to `map` (occ → new name), producing
    /// the realized program. Occurrences absent from the map keep their
    /// names.
    pub fn realize(&self, map: &std::collections::HashMap<WOcc, String>) -> WProgram {
        WProgram {
            stmts: self.stmts.iter().map(|s| rename_stmt(s, map)).collect(),
            max_occ: self.max_occ,
        }
    }
}

fn visit_aexpr<'s, F: FnMut(&'s str, WOcc)>(e: &'s AExpr, f: &mut F) {
    match e {
        AExpr::Var(n, o) => f(n, *o),
        AExpr::Num(_) => {}
        AExpr::Op(_, a, b) => {
            visit_aexpr(a, f);
            visit_aexpr(b, f);
        }
    }
}

fn visit_bexpr<'s, F: FnMut(&'s str, WOcc)>(e: &'s BExpr, f: &mut F) {
    match e {
        BExpr::Const(_) => {}
        BExpr::Not(b) => visit_bexpr(b, f),
        BExpr::Logic(_, a, b) => {
            visit_bexpr(a, f);
            visit_bexpr(b, f);
        }
        BExpr::Rel(_, a, b) => {
            visit_aexpr(a, f);
            visit_aexpr(b, f);
        }
        BExpr::Truthy(a) => visit_aexpr(a, f),
    }
}

fn visit_stmt<'s, F: FnMut(&'s str, WOcc)>(s: &'s WStmt, f: &mut F) {
    match s {
        WStmt::Assign(n, o, e) => {
            f(n, *o);
            visit_aexpr(e, f);
        }
        WStmt::Skip => {}
        WStmt::While(b, body) => {
            visit_bexpr(b, f);
            for s in body {
                visit_stmt(s, f);
            }
        }
        WStmt::If(b, t, e) => {
            visit_bexpr(b, f);
            for s in t {
                visit_stmt(s, f);
            }
            for s in e {
                visit_stmt(s, f);
            }
        }
    }
}

type RenameMap = std::collections::HashMap<WOcc, String>;

fn rename_aexpr(e: &AExpr, map: &RenameMap) -> AExpr {
    match e {
        AExpr::Var(n, o) => AExpr::Var(map.get(o).cloned().unwrap_or_else(|| n.clone()), *o),
        AExpr::Num(v) => AExpr::Num(*v),
        AExpr::Op(c, a, b) => AExpr::Op(
            *c,
            Box::new(rename_aexpr(a, map)),
            Box::new(rename_aexpr(b, map)),
        ),
    }
}

fn rename_bexpr(e: &BExpr, map: &RenameMap) -> BExpr {
    match e {
        BExpr::Const(v) => BExpr::Const(*v),
        BExpr::Not(b) => BExpr::Not(Box::new(rename_bexpr(b, map))),
        BExpr::Logic(and, a, b) => BExpr::Logic(
            *and,
            Box::new(rename_bexpr(a, map)),
            Box::new(rename_bexpr(b, map)),
        ),
        BExpr::Rel(op, a, b) => BExpr::Rel(
            op,
            Box::new(rename_aexpr(a, map)),
            Box::new(rename_aexpr(b, map)),
        ),
        BExpr::Truthy(a) => BExpr::Truthy(Box::new(rename_aexpr(a, map))),
    }
}

fn rename_stmt(s: &WStmt, map: &RenameMap) -> WStmt {
    match s {
        WStmt::Assign(n, o, e) => WStmt::Assign(
            map.get(o).cloned().unwrap_or_else(|| n.clone()),
            *o,
            rename_aexpr(e, map),
        ),
        WStmt::Skip => WStmt::Skip,
        WStmt::While(b, body) => WStmt::While(
            rename_bexpr(b, map),
            body.iter().map(|s| rename_stmt(s, map)).collect(),
        ),
        WStmt::If(b, t, e) => WStmt::If(
            rename_bexpr(b, map),
            t.iter().map(|s| rename_stmt(s, map)).collect(),
            e.iter().map(|s| rename_stmt(s, map)).collect(),
        ),
    }
}

/// One piece of a WHILE print template: literal source text or a variable
/// occurrence site (the WHILE analogue of `spe-minic`'s `TemplatePiece`).
///
/// Concatenating the pieces — substituting each [`WPiece::Occ`] with its
/// original name — reproduces [`WProgram`]'s `Display` output byte for
/// byte: the template printer shares the same traversal and only diverts
/// occurrence names into their own pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WPiece {
    /// Literal text between occurrences (possibly empty).
    Text(String),
    /// A variable occurrence: downstream renderers splice the variant's
    /// chosen name here.
    Occ {
        /// The occurrence id of the site.
        occ: WOcc,
        /// The name the original program uses here.
        name: String,
    },
}

/// Print sink: accumulates text, optionally diverting occurrence names
/// into template pieces.
struct Emit {
    out: String,
    pieces: Option<Vec<WPiece>>,
}

impl Emit {
    fn text(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn ch(&mut self, c: char) {
        self.out.push(c);
    }

    fn occ(&mut self, name: &str, occ: WOcc) {
        match &mut self.pieces {
            Some(pieces) => {
                pieces.push(WPiece::Text(std::mem::take(&mut self.out)));
                pieces.push(WPiece::Occ {
                    occ,
                    name: name.to_string(),
                });
            }
            None => self.out.push_str(name),
        }
    }
}

/// Prints a program into template pieces: static text with every variable
/// occurrence split out as a [`WPiece::Occ`]. The compile-once half of
/// fast WHILE variant rendering — realize any number of partitions by
/// splicing names between the pieces, with no AST rebuild.
pub fn print_template(p: &WProgram) -> Vec<WPiece> {
    let mut emit = Emit {
        out: String::new(),
        pieces: Some(Vec::new()),
    };
    fmt_seq(&p.stmts, &mut emit, 0);
    let mut pieces = emit.pieces.expect("template mode");
    pieces.push(WPiece::Text(emit.out));
    pieces
}

fn fmt_aexpr(e: &AExpr, out: &mut Emit) {
    match e {
        AExpr::Var(n, o) => out.occ(n, *o),
        AExpr::Num(v) => out.text(&v.to_string()),
        AExpr::Op(c, a, b) => {
            out.ch('(');
            fmt_aexpr(a, out);
            out.ch(' ');
            out.ch(*c);
            out.ch(' ');
            fmt_aexpr(b, out);
            out.ch(')');
        }
    }
}

fn fmt_bexpr(e: &BExpr, out: &mut Emit) {
    match e {
        BExpr::Const(v) => out.text(if *v { "true" } else { "false" }),
        BExpr::Not(b) => {
            out.text("not ");
            fmt_bexpr(b, out);
        }
        BExpr::Logic(and, a, b) => {
            out.ch('(');
            fmt_bexpr(a, out);
            out.text(if *and { " and " } else { " or " });
            fmt_bexpr(b, out);
            out.ch(')');
        }
        BExpr::Rel(op, a, b) => {
            fmt_aexpr(a, out);
            out.ch(' ');
            out.text(op);
            out.ch(' ');
            fmt_aexpr(b, out);
        }
        BExpr::Truthy(a) => fmt_aexpr(a, out),
    }
}

fn fmt_seq(stmts: &[WStmt], out: &mut Emit, indent: usize) {
    for (i, s) in stmts.iter().enumerate() {
        if i > 0 {
            out.text(";\n");
        }
        fmt_stmt(s, out, indent);
    }
}

fn fmt_stmt(s: &WStmt, out: &mut Emit, indent: usize) {
    let pad = "  ".repeat(indent);
    match s {
        WStmt::Assign(n, o, e) => {
            out.text(&pad);
            out.occ(n, *o);
            out.text(" := ");
            fmt_aexpr(e, out);
        }
        WStmt::Skip => {
            out.text(&pad);
            out.text("skip");
        }
        WStmt::While(b, body) => {
            out.text(&pad);
            out.text("while ");
            fmt_bexpr(b, out);
            out.text(" do begin\n");
            fmt_seq(body, out, indent + 1);
            out.ch('\n');
            out.text(&pad);
            out.text("end");
        }
        WStmt::If(b, t, e) => {
            out.text(&pad);
            out.text("if ");
            fmt_bexpr(b, out);
            out.text(" then begin\n");
            fmt_seq(t, out, indent + 1);
            out.ch('\n');
            out.text(&pad);
            out.text("end else begin\n");
            fmt_seq(e, out, indent + 1);
            out.ch('\n');
            out.text(&pad);
            out.text("end");
        }
    }
}

impl fmt::Display for WProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut emit = Emit {
            out: String::new(),
            pieces: None,
        };
        fmt_seq(&self.stmts, &mut emit, 0);
        f.write_str(&emit.out)
    }
}

/// Parse error with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WParseError(pub String);

impl fmt::Display for WParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WHILE parse error: {}", self.0)
    }
}

impl std::error::Error for WParseError {}

/// Parses a WHILE program.
///
/// Statements are separated by `;`: `x := a`, `skip`,
/// `while b do S`, `if b then S [else S]`; compound bodies use
/// `begin … end`. Boolean operators: `not`, `and`, `or`; relations `<`,
/// `<=`, `=`. A bare arithmetic expression in boolean position means
/// "non-zero" (`while a do …`), matching the paper's Figure 5.
///
/// # Errors
///
/// Returns [`WParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// let p = spe_while::parse("x := 1; if x < 2 then y := x else skip")?;
/// assert_eq!(p.stmts.len(), 2);
/// # Ok::<(), spe_while::WParseError>(())
/// ```
pub fn parse(src: &str) -> Result<WProgram, WParseError> {
    let toks = wlex(src)?;
    let mut p = WParser {
        toks,
        at: 0,
        next_occ: 0,
    };
    let stmts = p.seq(&[])?;
    if p.at != p.toks.len() {
        return Err(WParseError(format!(
            "trailing input at token {:?}",
            p.toks[p.at]
        )));
    }
    Ok(WProgram {
        stmts,
        max_occ: p.next_occ,
    })
}

#[derive(Debug, Clone, PartialEq)]
enum WTok {
    Ident(String),
    Num(i64),
    Sym(&'static str),
}

fn wlex(src: &str) -> Result<Vec<WTok>, WParseError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'0'..=b'9' => {
                let s = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                out.push(WTok::Num(
                    src[s..i]
                        .parse()
                        .map_err(|e| WParseError(format!("bad number: {e}")))?,
                ));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let s = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(WTok::Ident(src[s..i].to_string()));
            }
            b':' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(WTok::Sym(":="));
                i += 2;
            }
            b'<' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(WTok::Sym("<="));
                i += 2;
            }
            b'<' => {
                out.push(WTok::Sym("<"));
                i += 1;
            }
            b'=' => {
                out.push(WTok::Sym("="));
                i += 1;
            }
            b'+' => {
                out.push(WTok::Sym("+"));
                i += 1;
            }
            b'-' => {
                out.push(WTok::Sym("-"));
                i += 1;
            }
            b'*' => {
                out.push(WTok::Sym("*"));
                i += 1;
            }
            b'(' => {
                out.push(WTok::Sym("("));
                i += 1;
            }
            b')' => {
                out.push(WTok::Sym(")"));
                i += 1;
            }
            b';' => {
                out.push(WTok::Sym(";"));
                i += 1;
            }
            other => return Err(WParseError(format!("unexpected byte {:?}", other as char))),
        }
    }
    Ok(out)
}

struct WParser {
    toks: Vec<WTok>,
    at: usize,
    next_occ: u32,
}

impl WParser {
    fn peek(&self) -> Option<&WTok> {
        self.toks.get(self.at)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(WTok::Sym(t)) if *t == s) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(WTok::Ident(t)) if t == kw) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(WTok::Ident(t)) if t == kw)
    }

    fn new_occ(&mut self) -> WOcc {
        let o = WOcc(self.next_occ);
        self.next_occ += 1;
        o
    }

    /// Parses statements until EOF or one of the `stop` keywords.
    fn seq(&mut self, stop: &[&str]) -> Result<Vec<WStmt>, WParseError> {
        let mut out = Vec::new();
        loop {
            if self.peek().is_none() || stop.iter().any(|k| self.peek_kw(k)) {
                break;
            }
            out.push(self.stmt(stop)?);
            if !self.eat_sym(";") {
                break;
            }
        }
        Ok(out)
    }

    fn block_or_single(&mut self, stop: &[&str]) -> Result<Vec<WStmt>, WParseError> {
        if self.eat_kw("begin") {
            let body = self.seq(&["end"])?;
            if !self.eat_kw("end") {
                return Err(WParseError("expected `end`".into()));
            }
            Ok(body)
        } else {
            Ok(vec![self.stmt(stop)?])
        }
    }

    fn stmt(&mut self, stop: &[&str]) -> Result<WStmt, WParseError> {
        if self.eat_kw("skip") {
            return Ok(WStmt::Skip);
        }
        if self.eat_kw("while") {
            let b = self.bexpr()?;
            if !self.eat_kw("do") {
                return Err(WParseError("expected `do`".into()));
            }
            let body = self.block_or_single(stop)?;
            return Ok(WStmt::While(b, body));
        }
        if self.eat_kw("if") {
            let b = self.bexpr()?;
            if !self.eat_kw("then") {
                return Err(WParseError("expected `then`".into()));
            }
            let mut stop_then = stop.to_vec();
            stop_then.push("else");
            let t = self.block_or_single(&stop_then)?;
            let e = if self.eat_kw("else") {
                self.block_or_single(stop)?
            } else {
                Vec::new()
            };
            return Ok(WStmt::If(b, t, e));
        }
        // Assignment.
        let name = match self.peek() {
            Some(WTok::Ident(n)) => n.clone(),
            other => return Err(WParseError(format!("expected statement, found {other:?}"))),
        };
        self.at += 1;
        if !self.eat_sym(":=") {
            return Err(WParseError(format!("expected `:=` after `{name}`")));
        }
        let occ = self.new_occ();
        let e = self.aexpr()?;
        Ok(WStmt::Assign(name, occ, e))
    }

    fn aexpr(&mut self) -> Result<AExpr, WParseError> {
        let mut lhs = self.aterm()?;
        loop {
            let op = if self.eat_sym("+") {
                '+'
            } else if self.eat_sym("-") {
                '-'
            } else {
                break;
            };
            let rhs = self.aterm()?;
            lhs = AExpr::Op(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn aterm(&mut self) -> Result<AExpr, WParseError> {
        let mut lhs = self.afactor()?;
        while self.eat_sym("*") {
            let rhs = self.afactor()?;
            lhs = AExpr::Op('*', Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn afactor(&mut self) -> Result<AExpr, WParseError> {
        match self.peek().cloned() {
            Some(WTok::Num(v)) => {
                self.at += 1;
                Ok(AExpr::Num(v))
            }
            Some(WTok::Ident(n))
                if !matches!(
                    n.as_str(),
                    "true"
                        | "false"
                        | "not"
                        | "and"
                        | "or"
                        | "do"
                        | "then"
                        | "else"
                        | "begin"
                        | "end"
                ) =>
            {
                self.at += 1;
                let occ = self.new_occ();
                Ok(AExpr::Var(n, occ))
            }
            Some(WTok::Sym("(")) => {
                self.at += 1;
                let e = self.aexpr()?;
                if !self.eat_sym(")") {
                    return Err(WParseError("expected `)`".into()));
                }
                Ok(e)
            }
            other => Err(WParseError(format!("expected expression, found {other:?}"))),
        }
    }

    fn bexpr(&mut self) -> Result<BExpr, WParseError> {
        let mut lhs = self.bterm()?;
        while self.eat_kw("or") {
            let rhs = self.bterm()?;
            lhs = BExpr::Logic(false, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bterm(&mut self) -> Result<BExpr, WParseError> {
        let mut lhs = self.bfactor()?;
        while self.eat_kw("and") {
            let rhs = self.bfactor()?;
            lhs = BExpr::Logic(true, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bfactor(&mut self) -> Result<BExpr, WParseError> {
        if self.eat_kw("true") {
            return Ok(BExpr::Const(true));
        }
        if self.eat_kw("false") {
            return Ok(BExpr::Const(false));
        }
        if self.eat_kw("not") {
            return Ok(BExpr::Not(Box::new(self.bfactor()?)));
        }
        // `(` may open either an arithmetic or a boolean
        // sub-expression; try arithmetic first and backtrack.
        let save_at = self.at;
        let save_occ = self.next_occ;
        if matches!(self.peek(), Some(WTok::Sym("("))) {
            if let Ok(a) = self.aexpr() {
                return self.relation_or_truthy(a);
            }
            self.at = save_at;
            self.next_occ = save_occ;
            self.at += 1; // consume `(`
            let b = self.bexpr()?;
            if !self.eat_sym(")") {
                return Err(WParseError("expected `)` after boolean".into()));
            }
            return Ok(b);
        }
        let a = self.aexpr()?;
        self.relation_or_truthy(a)
    }

    fn relation_or_truthy(&mut self, a: AExpr) -> Result<BExpr, WParseError> {
        if self.eat_sym("<=") {
            return Ok(BExpr::Rel("<=", Box::new(a), Box::new(self.aexpr()?)));
        }
        if self.eat_sym("<") {
            return Ok(BExpr::Rel("<", Box::new(a), Box::new(self.aexpr()?)));
        }
        if self.eat_sym("=") {
            return Ok(BExpr::Rel("=", Box::new(a), Box::new(self.aexpr()?)));
        }
        Ok(BExpr::Truthy(Box::new(a)))
    }
}

/// Final variable state of a terminated program.
pub type WState = BTreeMap<String, i64>;

/// Result of running a WHILE program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Terminated with the given final state.
    Finished(WState),
    /// Exhausted its fuel (treated as non-terminating).
    Timeout,
}

/// Runtime error (arithmetic overflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WRuntimeError(pub String);

impl fmt::Display for WRuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WHILE runtime error: {}", self.0)
    }
}

impl std::error::Error for WRuntimeError {}

/// Reference interpreter: big-step with a fuel bound. Variables start at
/// 0; WHILE has no undefined behaviour, making it a clean differential
/// oracle.
///
/// # Errors
///
/// Returns [`WRuntimeError`] on arithmetic overflow.
pub fn interpret(p: &WProgram, fuel: u64) -> Result<Outcome, WRuntimeError> {
    let mut state: WState = BTreeMap::new();
    for v in p.variables() {
        state.insert(v, 0);
    }
    let mut remaining = fuel;
    if run_seq(&p.stmts, &mut state, &mut remaining)? {
        Ok(Outcome::Finished(state))
    } else {
        Ok(Outcome::Timeout)
    }
}

fn run_seq(stmts: &[WStmt], state: &mut WState, fuel: &mut u64) -> Result<bool, WRuntimeError> {
    for s in stmts {
        if !run_stmt(s, state, fuel)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn run_stmt(s: &WStmt, state: &mut WState, fuel: &mut u64) -> Result<bool, WRuntimeError> {
    if *fuel == 0 {
        return Ok(false);
    }
    *fuel -= 1;
    match s {
        WStmt::Assign(n, _, e) => {
            let v = eval_a(e, state)?;
            state.insert(n.clone(), v);
            Ok(true)
        }
        WStmt::Skip => Ok(true),
        WStmt::While(b, body) => {
            while eval_b(b, state)? {
                if *fuel == 0 {
                    return Ok(false);
                }
                *fuel -= 1;
                if !run_seq(body, state, fuel)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        WStmt::If(b, t, e) => {
            if eval_b(b, state)? {
                run_seq(t, state, fuel)
            } else {
                run_seq(e, state, fuel)
            }
        }
    }
}

fn eval_a(e: &AExpr, state: &WState) -> Result<i64, WRuntimeError> {
    match e {
        AExpr::Var(n, _) => Ok(*state.get(n).unwrap_or(&0)),
        AExpr::Num(v) => Ok(*v),
        AExpr::Op(c, a, b) => {
            let (x, y) = (eval_a(a, state)?, eval_a(b, state)?);
            let r = match c {
                '+' => x.checked_add(y),
                '-' => x.checked_sub(y),
                '*' => x.checked_mul(y),
                other => return Err(WRuntimeError(format!("unknown operator {other}"))),
            };
            r.ok_or_else(|| WRuntimeError("arithmetic overflow".into()))
        }
    }
}

fn eval_b(e: &BExpr, state: &WState) -> Result<bool, WRuntimeError> {
    match e {
        BExpr::Const(v) => Ok(*v),
        BExpr::Not(b) => Ok(!eval_b(b, state)?),
        BExpr::Logic(true, a, b) => Ok(eval_b(a, state)? && eval_b(b, state)?),
        BExpr::Logic(false, a, b) => Ok(eval_b(a, state)? || eval_b(b, state)?),
        BExpr::Rel("<", a, b) => Ok(eval_a(a, state)? < eval_a(b, state)?),
        BExpr::Rel("<=", a, b) => Ok(eval_a(a, state)? <= eval_a(b, state)?),
        BExpr::Rel("=", a, b) => Ok(eval_a(a, state)? == eval_a(b, state)?),
        BExpr::Rel(op, _, _) => Err(WRuntimeError(format!("unknown relation {op}"))),
        BExpr::Truthy(a) => Ok(eval_a(a, state)? != 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn parses_and_prints_figure5() {
        let p = parse("a := 10; b := 1; while a do a := a - b").expect("parses");
        assert_eq!(p.stmts.len(), 3);
        let printed = p.to_string();
        let again = parse(&printed).expect("reparses");
        assert_eq!(again.stmts.len(), 3);
    }

    #[test]
    fn figure5_has_six_holes_and_two_vars() {
        let p = parse("a := 10; b := 1; while a do a := a - b").expect("parses");
        assert_eq!(p.max_occ, 6);
        assert_eq!(p.variables(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn interprets_figure5() {
        let p = parse("a := 10; b := 1; while a do a := a - b").expect("parses");
        match interpret(&p, 1000).expect("runs") {
            Outcome::Finished(s) => {
                assert_eq!(s["a"], 0);
                assert_eq!(s["b"], 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alpha_equivalent_programs_have_renamed_outputs() {
        // P and P1 of Figure 5 (a <-> b swapped).
        let p = parse("a := 10; b := 1; while a do a := a - b").expect("parses");
        let p1 = parse("b := 10; a := 1; while b do b := b - a").expect("parses");
        let (Outcome::Finished(s), Outcome::Finished(s1)) = (
            interpret(&p, 1000).expect("runs"),
            interpret(&p1, 1000).expect("runs"),
        ) else {
            panic!("timeout");
        };
        assert_eq!(s["a"], s1["b"]);
        assert_eq!(s["b"], s1["a"]);
    }

    #[test]
    fn if_then_else_and_booleans() {
        let p = parse("x := 3; if x < 5 and not (x = 2) then y := 1 else y := 2").expect("parses");
        let Outcome::Finished(s) = interpret(&p, 1000).expect("runs") else {
            panic!("timeout");
        };
        assert_eq!(s["y"], 1);
    }

    #[test]
    fn begin_end_blocks() {
        let p = parse("i := 0; s := 0; while i < 3 do begin s := s + i; i := i + 1 end")
            .expect("parses");
        let Outcome::Finished(s) = interpret(&p, 1000).expect("runs") else {
            panic!("timeout");
        };
        assert_eq!(s["s"], 3);
        assert_eq!(s["i"], 3);
    }

    #[test]
    fn nontermination_times_out() {
        let p = parse("x := 1; while true do x := x + 0").expect("parses");
        assert_eq!(interpret(&p, 100).expect("runs"), Outcome::Timeout);
    }

    #[test]
    fn overflow_is_an_error() {
        let p = parse("x := 2; while true do x := x * x").expect("parses");
        assert!(interpret(&p, 10_000).is_err());
    }

    #[test]
    fn realize_renames_occurrences() {
        let p = parse("a := 1; b := a").expect("parses");
        // Occurrences: a(0), b(1), a(2).
        let mut map = HashMap::new();
        map.insert(WOcc(0), "b".to_string());
        map.insert(WOcc(1), "a".to_string());
        map.insert(WOcc(2), "b".to_string());
        let r = p.realize(&map);
        assert_eq!(r.to_string(), "b := 1;\na := b");
    }

    #[test]
    fn template_pieces_reassemble_to_display() {
        let srcs = [
            "a := 10; b := 1; while a do a := a - b",
            "i := 0; s := 0; while i < 3 do begin s := s + i; i := i + 1 end",
            "x := 3; if x < 5 and not (x = 2) then y := 1 else y := 2",
        ];
        for src in srcs {
            let p = parse(src).expect("parses");
            let rebuilt: String = print_template(&p)
                .iter()
                .map(|piece| match piece {
                    WPiece::Text(t) => t.as_str(),
                    WPiece::Occ { name, .. } => name.as_str(),
                })
                .collect();
            assert_eq!(rebuilt, p.to_string(), "template drifted for {src}");
        }
    }

    #[test]
    fn template_has_one_piece_per_occurrence() {
        let p = parse("a := 10; b := 1; while a do a := a - b").expect("parses");
        let occs = print_template(&p)
            .iter()
            .filter(|piece| matches!(piece, WPiece::Occ { .. }))
            .count();
        assert_eq!(occs as u32, p.max_occ);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("x :=").is_err());
        assert!(parse("while do x := 1").is_err());
        assert!(parse("x = 1").is_err());
    }

    #[test]
    fn occurrence_order_matches_characteristic_vector() {
        // Figure 5: sP = ⟨a, b, a, a, a, b⟩ — the characteristic vector
        // lists holes in source order.
        let p = parse("a := 10; b := 1; while a do a := a - b").expect("parses");
        let mut names = Vec::new();
        p.for_each_occ(&mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["a", "b", "a", "a", "a", "b"]);
    }

    #[test]
    fn display_roundtrip_preserves_semantics() {
        let srcs = [
            "a := 10; b := 1; while a do a := a - b",
            "i := 0; s := 0; while i < 5 do begin s := s + i * i; i := i + 1 end",
            "x := 3; if x < 5 then y := 1 else y := 2; z := x + y",
        ];
        for src in srcs {
            let p = parse(src).expect("parses");
            let q = parse(&p.to_string()).expect("reparses");
            assert_eq!(
                interpret(&p, 10_000).expect("p runs"),
                interpret(&q, 10_000).expect("q runs"),
                "{src}"
            );
        }
    }
}
