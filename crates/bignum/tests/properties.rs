//! Property-based tests checking `BigUint` arithmetic against `u128`.

use proptest::prelude::*;
use spe_bignum::BigUint;

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        let big = &BigUint::from(a) + &BigUint::from(b);
        prop_assert_eq!(big.to_u128(), Some(a + b));
    }

    #[test]
    fn mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let big = &BigUint::from(a) * &BigUint::from(b);
        prop_assert_eq!(big.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let big = &BigUint::from(hi) - &BigUint::from(lo);
        prop_assert_eq!(big.to_u128(), Some(hi - lo));
    }

    #[test]
    fn divmod_matches_u128(a in 0u128..u128::MAX, w in 1u64..u64::MAX) {
        let (q, r) = BigUint::from(a).divmod_word(w);
        prop_assert_eq!(q.to_u128(), Some(a / w as u128));
        prop_assert_eq!(r as u128, a % w as u128);
    }

    #[test]
    fn display_parse_roundtrip(a in 0u128..u128::MAX) {
        let big = BigUint::from(a);
        let back: BigUint = big.to_string().parse().expect("display output parses");
        prop_assert_eq!(back, big);
    }

    #[test]
    fn ordering_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        prop_assert_eq!(BigUint::from(a).cmp(&BigUint::from(b)), a.cmp(&b));
    }

    #[test]
    fn pow_matches_checked_u128(base in 0u64..40u64, exp in 0u32..20u32) {
        if let Some(expect) = (base as u128).checked_pow(exp) {
            prop_assert_eq!(BigUint::from(base).pow(exp).to_u128(), Some(expect));
        }
    }

    #[test]
    fn log10_within_one_digit(a in 1u128..u128::MAX) {
        let big = BigUint::from(a);
        let digits = big.to_string().len() as f64;
        let l = big.log10();
        prop_assert!(l >= digits - 1.0 - 1e-9 && l < digits + 1e-9,
            "log10 {} vs digits {}", l, digits);
    }

    #[test]
    fn add_is_commutative(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        prop_assert_eq!(
            &BigUint::from(a) + &BigUint::from(b),
            &BigUint::from(b) + &BigUint::from(a)
        );
    }

    #[test]
    fn mul_distributes_over_add(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64, c in 0u64..u32::MAX as u64) {
        let (a, b, c) = (BigUint::from(a), BigUint::from(b), BigUint::from(c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}
