//! Arbitrary-precision unsigned integers for SPE search-space accounting.
//!
//! The SPE paper's Table 1 reports enumeration-set sizes on the order of
//! `10^163`, far beyond `u128`. This crate provides [`BigUint`], a small,
//! dependency-free big integer sufficient for the counting needs of the
//! workspace: addition, subtraction, multiplication, exponentiation,
//! division by machine words, decimal parsing/printing and base-10
//! magnitude estimation.
//!
//! # Examples
//!
//! ```
//! use spe_bignum::BigUint;
//!
//! let naive = BigUint::from(5u64).pow(5); // 5^5 fillings of Figure 2
//! assert_eq!(naive.to_string(), "3125");
//! assert_eq!(naive.log10().floor(), 3.0);
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Sub, SubAssign};
use std::str::FromStr;

/// Number of bits in one limb.
const LIMB_BITS: u32 = 32;

/// An arbitrary-precision unsigned integer.
///
/// Stored as base-2^32 limbs in little-endian order with no trailing zero
/// limbs (the canonical representation of zero is an empty limb vector).
///
/// # Examples
///
/// ```
/// use spe_bignum::BigUint;
///
/// let a = BigUint::from(10u64).pow(20);
/// let b = &a * &a;
/// assert_eq!(b.to_string().len(), 41); // 10^40 has 41 digits
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value `0`.
    ///
    /// ```
    /// assert!(spe_bignum::BigUint::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    ///
    /// ```
    /// assert_eq!(spe_bignum::BigUint::one(), 1u64.into());
    /// ```
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// assert!(BigUint::from(0u64).is_zero());
    /// assert!(!BigUint::from(7u64).is_zero());
    /// ```
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (zero has zero bits).
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// assert_eq!(BigUint::from(8u64).bits(), 4);
    /// assert_eq!(BigUint::zero().bits(), 0);
    /// ```
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64 + (32 - top.leading_zeros()) as u64
            }
        }
    }

    /// Converts to `u64` if the value fits.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// assert_eq!(BigUint::from(42u64).to_u64(), Some(42));
    /// assert_eq!(BigUint::from(2u64).pow(100).to_u64(), None);
    /// ```
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (32 * i as u32);
        }
        Some(v)
    }

    /// Lossy conversion to `f64` (`f64::INFINITY` when too large).
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// assert_eq!(BigUint::from(1u64 << 40).to_f64(), (1u64 << 40) as f64);
    /// ```
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.to_u64().expect("fits in u64") as f64;
        }
        // Take the top limbs as a 64-bit mantissa and scale by the
        // remaining binary exponent.
        let top_limb = self.limbs.len() - 1;
        let mut mantissa: u64 = 0;
        let mut taken = 0u32;
        let mut idx = top_limb as isize;
        while taken < 64 && idx >= 0 {
            mantissa = (mantissa << 32) | self.limbs[idx as usize] as u64;
            taken += 32;
            idx -= 1;
        }
        let top_bits = 32 - self.limbs[top_limb].leading_zeros();
        let mantissa_bits = (taken - 32 + top_bits) as i64;
        let shift = bits as i64 - mantissa_bits;
        mantissa as f64 * 2f64.powi(shift as i32)
    }

    /// Approximate base-10 logarithm. Returns `0.0` for zero, which has no
    /// magnitude to report.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// let x = BigUint::from(10u64).pow(163);
    /// assert!((x.log10() - 163.0).abs() < 1e-6);
    /// ```
    pub fn log10(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let bits = self.bits();
        if bits <= 64 {
            return (self.to_u64().expect("fits in u64") as f64).log10();
        }
        let f = self.to_f64();
        if f.is_finite() {
            f.log10()
        } else {
            // Mantissa-and-exponent path for values beyond f64 range.
            let top_limb = self.limbs.len() - 1;
            let mut mantissa: u64 = 0;
            let mut idx = top_limb as isize;
            let mut taken = 0;
            while taken < 2 && idx >= 0 {
                mantissa = (mantissa << 32) | self.limbs[idx as usize] as u64;
                idx -= 1;
                taken += 1;
            }
            let used_bits = 32 * taken as u64 - self.limbs[top_limb].leading_zeros() as u64;
            (mantissa as f64).log10() + (bits - used_bits) as f64 * 2f64.log10()
        }
    }

    /// Checked subtraction; returns `None` when `other > self`.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// let a = BigUint::from(10u64);
    /// assert_eq!(a.checked_sub(&BigUint::from(4u64)), Some(BigUint::from(6u64)));
    /// assert_eq!(a.checked_sub(&BigUint::from(11u64)), None);
    /// ```
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0, "comparison guaranteed no borrow");
        let mut r = BigUint { limbs: out };
        r.normalize();
        Some(r)
    }

    /// Multiplies by a machine word in place.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// let mut v = BigUint::one();
    /// v.mul_word(1_000_000_007);
    /// assert_eq!(v.to_u64(), Some(1_000_000_007));
    /// ```
    pub fn mul_word(&mut self, w: u64) {
        if w == 0 || self.is_zero() {
            self.limbs.clear();
            return;
        }
        let (lo, hi) = (w as u32 as u64, w >> 32);
        if hi == 0 {
            let mut carry: u64 = 0;
            for l in &mut self.limbs {
                let v = *l as u64 * lo + carry;
                *l = v as u32;
                carry = v >> 32;
            }
            while carry > 0 {
                self.limbs.push(carry as u32);
                carry >>= 32;
            }
        } else {
            let rhs = BigUint::from(w);
            let prod = &*self * &rhs;
            *self = prod;
        }
    }

    /// Divides by a machine word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// let (q, r) = BigUint::from(1001u64).divmod_word(10);
    /// assert_eq!((q.to_u64(), r), (Some(100), 1));
    /// ```
    pub fn divmod_word(&self, w: u64) -> (BigUint, u64) {
        assert!(w != 0, "division by zero");
        if w <= u32::MAX as u64 {
            let mut out = vec![0u32; self.limbs.len()];
            let mut rem: u64 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                out[i] = (cur / w) as u32;
                rem = cur % w;
            }
            let mut q = BigUint { limbs: out };
            q.normalize();
            (q, rem)
        } else {
            let mut out = vec![0u32; self.limbs.len()];
            let mut rem: u128 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u128;
                out[i] = (cur / w as u128) as u32;
                rem = cur % w as u128;
            }
            let mut q = BigUint { limbs: out };
            q.normalize();
            (q, rem as u64)
        }
    }

    /// Raises `self` to the power `exp` by binary exponentiation.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// assert_eq!(BigUint::from(2u64).pow(10).to_u64(), Some(1024));
    /// assert_eq!(BigUint::from(7u64).pow(0).to_u64(), Some(1));
    /// ```
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Renders the value in scientific notation with three significant
    /// digits, e.g. `5.24e163`, matching the paper's Table 1 style. Values
    /// with at most seven digits are printed exactly.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// assert_eq!(BigUint::from(1234u64).to_scientific(), "1234");
    /// assert_eq!(BigUint::from(10u64).pow(163).to_scientific(), "1.00e163");
    /// ```
    pub fn to_scientific(&self) -> String {
        let s = self.to_string();
        if s.len() <= 7 {
            return s;
        }
        let exp = s.len() - 1;
        let lead = &s[..1];
        let frac = &s[1..3];
        format!("{lead}.{frac}e{exp}")
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        let mut r = BigUint { limbs: vec![v] };
        r.normalize();
        r
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        let mut r = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        r.normalize();
        r
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        let mut r = BigUint {
            limbs: vec![
                v as u32,
                (v >> 32) as u32,
                (v >> 64) as u32,
                (v >> 96) as u32,
            ],
        };
        r.normalize();
        r
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..long.limbs.len() {
            let s = long.limbs[i] as u64 + *short.limbs.get(i).unwrap_or(&0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        BigUint { limbs: out }
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl AddAssign for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        *self = &*self + &rhs;
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        let mut acc = BigUint::zero();
        for x in iter {
            acc += &x;
        }
        acc
    }
}

impl<'a> Sum<&'a BigUint> for BigUint {
    fn sum<I: Iterator<Item = &'a BigUint>>(iter: I) -> BigUint {
        let mut acc = BigUint::zero();
        for x in iter {
            acc += x;
        }
        acc
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_word(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, c) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&c.to_string());
            } else {
                s.push_str(&format!("{c:09}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

/// Error returned when parsing a [`BigUint`] from a malformed string.
///
/// ```
/// use spe_bignum::BigUint;
/// assert!("12x".parse::<BigUint>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    offending: char,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid digit {:?} in big integer literal",
            self.offending
        )
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigUintError { offending: ' ' });
        }
        let mut acc = BigUint::zero();
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(ParseBigUintError { offending: ch })?;
            acc.mul_word(10);
            acc += &BigUint::from(d);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_display() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
    }

    #[test]
    fn add_small() {
        let a = BigUint::from(123u64);
        let b = BigUint::from(877u64);
        assert_eq!((&a + &b).to_u64(), Some(1000));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(u64::MAX as u128 + 1));
    }

    #[test]
    fn mul_matches_u128() {
        let a = BigUint::from(0xDEAD_BEEF_u64);
        let b = BigUint::from(0xFEED_FACE_CAFE_u64);
        assert_eq!(
            (&a * &b).to_u128(),
            Some(0xDEAD_BEEF_u128 * 0xFEED_FACE_CAFE_u128)
        );
    }

    #[test]
    fn pow_and_display_large() {
        let p = BigUint::from(10u64).pow(30);
        assert_eq!(p.to_string(), format!("1{}", "0".repeat(30)));
    }

    #[test]
    fn sub_roundtrip() {
        let a = BigUint::from(10u64).pow(25);
        let b = BigUint::from(987654321u64);
        let d = &a - &b;
        assert_eq!(&d + &b, a);
    }

    #[test]
    fn checked_sub_underflow() {
        let a = BigUint::from(1u64);
        let b = BigUint::from(2u64);
        assert_eq!(a.checked_sub(&b), None);
    }

    #[test]
    fn divmod_small_word() {
        let a = BigUint::from(12345678901234567890u128);
        let (q, r) = a.divmod_word(97);
        assert_eq!(
            (q.to_u128(), r as u128),
            (
                Some(12345678901234567890u128 / 97),
                12345678901234567890u128 % 97
            )
        );
    }

    #[test]
    fn divmod_large_word() {
        let a = BigUint::from(10u64).pow(40);
        let w = u64::MAX - 12;
        let (q, r) = a.divmod_word(w);
        let recomposed = &(&q * &BigUint::from(w)) + &BigUint::from(r);
        assert_eq!(recomposed, a);
    }

    #[test]
    fn parse_display_roundtrip() {
        let s = "987654321098765432109876543210987654321";
        let v: BigUint = s.parse().expect("valid literal");
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("1a2".parse::<BigUint>().is_err());
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(10u64).pow(10);
        let b = BigUint::from(10u64).pow(11);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(BigUint::from(12345u64).to_f64(), 12345.0);
        let big = BigUint::from(2u64).pow(80);
        let expect = 2f64.powi(80);
        assert!((big.to_f64() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn log10_of_powers_of_ten() {
        for e in [1u32, 5, 20, 100, 163] {
            let v = BigUint::from(10u64).pow(e);
            assert!(
                (v.log10() - e as f64).abs() < 1e-6,
                "log10(10^{e}) = {}",
                v.log10()
            );
        }
    }

    #[test]
    fn log10_beyond_f64_range() {
        let v = BigUint::from(10u64).pow(400);
        assert!((v.log10() - 400.0).abs() < 1e-4);
    }

    #[test]
    fn scientific_notation() {
        let v: BigUint = "52400000000000000000".parse().expect("valid");
        assert_eq!(v.to_scientific(), "5.24e19");
        assert_eq!(BigUint::from(99u64).to_scientific(), "99");
    }

    #[test]
    fn sum_iterator() {
        let total: BigUint = (1u64..=100).map(BigUint::from).sum();
        assert_eq!(total.to_u64(), Some(5050));
    }

    #[test]
    fn mul_word_in_place() {
        let mut v = BigUint::from(1u64);
        for _ in 0..25 {
            v.mul_word(10);
        }
        assert_eq!(v.to_string(), format!("1{}", "0".repeat(25)));
    }

    #[test]
    fn mul_word_with_high_bits() {
        let mut v = BigUint::from(3u64);
        v.mul_word(u64::MAX);
        assert_eq!(v.to_u128(), Some(3u128 * u64::MAX as u128));
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigUint::from(1u64).bits(), 1);
        assert_eq!(BigUint::from(255u64).bits(), 8);
        assert_eq!(BigUint::from(256u64).bits(), 9);
        assert_eq!(BigUint::from(2u64).pow(200).bits(), 201);
    }
}
