//! A hardened subprocess oracle: [`SubprocBackend`] implements
//! [`spe_simcc::backend::CompilerBackend`] by driving an **external
//! compiler binary** instead of the in-process simulator, so the whole
//! SPE pipeline — parallel campaigns, checkpoint/resume, reduction —
//! can fuzz a real compiler through a process boundary (`DESIGN.md`
//! §10; the paper's actual GCC/Clang campaigns, Table 2, ran this way).
//!
//! # Invocation contract
//!
//! For every `(variant, compiler configuration)` the backend runs
//!
//! ```text
//! <command...> -O<opt> <source-file>
//! ```
//!
//! in a fresh per-job scratch directory, with `SPE_FAMILY` /
//! `SPE_VERSION` in the environment naming the configuration. The
//! command must compile **and run** the program, then report on stdout:
//!
//! * first line `exit <n>` — the program ran and exited with `n`,
//!   remaining lines are the program's output; or
//! * first line `trap` — the compiled program crashed at runtime.
//!
//! Process exit status is the compile verdict: `0` success, `1` the
//! program was rejected (outside the tool's subset — not a bug), and
//! anything else a compiler failure.
//!
//! # Triage: verdicts, not errors
//!
//! Everything a flaky or crashing compiler can do is mapped onto the
//! [`spe_simcc::Observation`] verdict classes the harness already
//! triages — the campaign never panics or hangs because the compiler
//! under test did:
//!
//! | behaviour                   | verdict                                  |
//! |-----------------------------|------------------------------------------|
//! | exit 0, protocol stdout     | clean / wrong-code (differential)        |
//! | exit 0, garbage stdout      | ICE `garbage stdout`                     |
//! | exit 1                      | unsupported (no verdict)                 |
//! | exit ≥ 2                    | ICE (stderr crash line or `abnormal exit`)|
//! | killed by signal            | ICE `signal <n> (<name>)`                |
//! | wall-clock timeout (killed) | slow-compile (after bounded retries)     |
//!
//! Only backend **machinery** failures — the command cannot be spawned,
//! scratch I/O fails — surface as
//! [`spe_simcc::backend::BackendError`]; after bounded retries the
//! harness quarantines that (file, shard) job as a
//! `BackendDegraded` finding and the campaign continues.
//!
//! Wrong-code detection is differential against the same UB-free
//! reference interpretation ([`spe_simcc::interp`]) the in-process
//! campaigns use, so an external compiler's miscompilations surface
//! under the very signatures `spe-harness` deduplicates and reduces.
//!
//! # Hardening
//!
//! * **Process pool** — at most [`SubprocConfig::max_processes`]
//!   children run concurrently (size it to the campaign's worker
//!   count), enforced by a semaphore independent of caller threading.
//! * **Timeouts** — every child gets
//!   [`SubprocConfig::timeout`] of wall clock; on expiry it is killed
//!   and reaped, counted by [`SubprocStats::timeouts`].
//! * **Scratch isolation** — each job runs in its own directory,
//!   removed on clean verdicts and preserved (and logged, up to
//!   [`SubprocConfig::max_preserved`]) when the compiler faulted, so
//!   crash artifacts survive for debugging.
//! * **Bounded retries** — transient classes (spawn failure, timeout)
//!   are retried up to [`SubprocConfig::retries`] times; persistent
//!   timeout becomes a slow-compile verdict, persistent spawn failure a
//!   [`BackendError`] (and thus a quarantined job).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use spe_simcc::backend::{intern, BackendError, BackendRegistry, CompilerBackend};
use spe_simcc::{Compiler, Divergence, Ice, Observation};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Registry id of [`SubprocBackend`].
pub const SUBPROC_BACKEND_ID: &str = "subproc";

/// Configuration of a [`SubprocBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubprocConfig {
    /// The external compiler command: executable plus fixed leading
    /// arguments. `-O<opt>` and the source path are appended per job.
    pub command: Vec<String>,
    /// Wall-clock budget per child process; on expiry the child is
    /// killed and reaped.
    pub timeout: Duration,
    /// How many times a transient failure (spawn error, timeout) is
    /// retried before it becomes a final outcome.
    pub retries: u32,
    /// Maximum concurrently running children. Size this to the
    /// campaign's worker count; more buys nothing, fewer throttles.
    pub max_processes: usize,
    /// Extra environment variables for every child.
    pub env: Vec<(String, String)>,
    /// Root under which per-job scratch directories are created;
    /// `None` uses the system temp directory.
    pub scratch_root: Option<PathBuf>,
    /// At most this many faulted-job scratch directories are preserved
    /// for debugging; further ones are removed like successes.
    pub max_preserved: usize,
}

impl SubprocConfig {
    /// A configuration with conservative defaults: 10 s timeout, one
    /// retry, pool sized to the machine's parallelism.
    pub fn new(command: Vec<String>) -> SubprocConfig {
        SubprocConfig {
            command,
            timeout: Duration::from_secs(10),
            retries: 1,
            max_processes: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            env: Vec::new(),
            scratch_root: None,
            max_preserved: 16,
        }
    }
}

/// Counters a campaign or test can inspect after driving the backend.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubprocStats {
    /// Child processes spawned (including retries).
    pub launches: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Children killed at the wall-clock timeout.
    pub timeouts: u64,
    /// Scratch directories preserved after a compiler fault.
    pub preserved: Vec<PathBuf>,
}

/// A semaphore bounding concurrently running children.
struct Pool {
    free: Mutex<usize>,
    cv: Condvar,
}

struct PoolSlot<'a>(&'a Pool);

impl Pool {
    fn new(n: usize) -> Pool {
        Pool {
            free: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> PoolSlot<'_> {
        let mut free = self.free.lock().expect("poisoned");
        while *free == 0 {
            free = self.cv.wait(free).expect("poisoned");
        }
        *free -= 1;
        PoolSlot(self)
    }
}

impl Drop for PoolSlot<'_> {
    fn drop(&mut self) {
        *self.0.free.lock().expect("poisoned") += 1;
        self.0.cv.notify_one();
    }
}

/// The subprocess-dispatched [`CompilerBackend`]. See the crate docs
/// for the invocation contract, triage table and hardening guarantees.
pub struct SubprocBackend {
    config: SubprocConfig,
    base: PathBuf,
    seq: AtomicU64,
    pool: Pool,
    launches: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    preserved: Mutex<Vec<PathBuf>>,
}

/// One completed child process (possibly killed at the timeout).
struct Outcome {
    status: ExitStatus,
    timed_out: bool,
    stdout: String,
    stderr: String,
}

/// The run report parsed from protocol stdout.
enum RunReport {
    /// `exit <n>` plus output lines (joined with `\n`).
    Exited { code: i64, output: String },
    /// `trap`: the compiled program crashed at runtime.
    Trapped,
}

impl SubprocBackend {
    /// Creates the backend and its scratch base directory.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the command is empty or the scratch base
    /// cannot be created.
    pub fn new(config: SubprocConfig) -> Result<SubprocBackend, BackendError> {
        if config.command.is_empty() {
            return Err(BackendError::new("subproc backend needs a command"));
        }
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let root = config
            .scratch_root
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        let base = root.join(format!(
            "spe-subproc-{}-{}",
            std::process::id(),
            INSTANCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&base)
            .map_err(|e| BackendError::new(format!("create scratch base {base:?}: {e}")))?;
        let pool = Pool::new(config.max_processes);
        Ok(SubprocBackend {
            config,
            base,
            seq: AtomicU64::new(0),
            pool,
            launches: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            preserved: Mutex::new(Vec::new()),
        })
    }

    /// The scratch base directory jobs run under (removed on drop when
    /// empty — i.e. when no faulted job was preserved).
    pub fn scratch_base(&self) -> &Path {
        &self.base
    }

    /// A snapshot of the hardening counters.
    pub fn stats(&self) -> SubprocStats {
        SubprocStats {
            launches: self.launches.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            preserved: self.preserved.lock().expect("poisoned").clone(),
        }
    }

    /// Spawns one attempt and waits for it, killing at the timeout.
    fn run_once(&self, cc: Compiler, source_path: &Path, job: &Path) -> std::io::Result<Outcome> {
        let telemetry = spe_telemetry::global();
        let run_timer = spe_telemetry::Timer::start(&*telemetry);
        let mut cmd = Command::new(&self.config.command[0]);
        cmd.args(&self.config.command[1..])
            .arg(format!("-O{}", cc.opt()))
            .arg(source_path)
            .current_dir(job)
            .env("SPE_FAMILY", cc.id().family)
            .env("SPE_VERSION", cc.id().version.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in &self.config.env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn()?;
        self.launches.fetch_add(1, Ordering::Relaxed);
        telemetry.counter(spe_telemetry::names::SUBPROC_LAUNCHES, 1);
        // Reader threads keep both pipes drained so a chatty child can
        // never deadlock against a full pipe buffer.
        let drain = |stream: Option<Box<dyn std::io::Read + Send>>| {
            std::thread::spawn(move || {
                let mut s = String::new();
                if let Some(mut r) = stream {
                    // Non-UTF-8 chatter is garbage; triage handles it.
                    let _ = r.read_to_string(&mut s);
                }
                s
            })
        };
        let out = drain(
            child
                .stdout
                .take()
                .map(|s| Box::new(s) as Box<dyn std::io::Read + Send>),
        );
        let err = drain(
            child
                .stderr
                .take()
                .map(|s| Box::new(s) as Box<dyn std::io::Read + Send>),
        );
        let deadline = Instant::now() + self.config.timeout;
        let (status, timed_out) = loop {
            match child.try_wait()? {
                Some(status) => break (status, false),
                None if Instant::now() >= deadline => {
                    // Kill and *reap*: no zombie, no orphaned child
                    // holding the pool slot.
                    let _ = child.kill();
                    let status = child.wait()?;
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    telemetry.counter(spe_telemetry::names::SUBPROC_TIMEOUTS, 1);
                    break (status, true);
                }
                None => std::thread::sleep(Duration::from_millis(2)),
            }
        };
        let stdout = out.join().unwrap_or_default();
        let stderr = err.join().unwrap_or_default();
        telemetry.histogram(spe_telemetry::names::SUBPROC_RUN_NS, run_timer.stop_nanos());
        Ok(Outcome {
            status,
            timed_out,
            stdout,
            stderr,
        })
    }

    /// Keeps a faulted job's scratch directory for debugging (bounded
    /// by `max_preserved`), logging where it went.
    fn preserve(&self, job: &Path, why: &str) {
        let mut preserved = self.preserved.lock().expect("poisoned");
        if preserved.len() < self.config.max_preserved {
            eprintln!("spe-subproc: preserving scratch {} ({why})", job.display());
            preserved.push(job.to_path_buf());
        } else {
            let _ = std::fs::remove_dir_all(job);
        }
    }

    /// Triage of a completed (non-timed-out) child. Every outcome is a
    /// verdict; see the crate-level table.
    fn triage(
        &self,
        source: &str,
        outcome: &Outcome,
        wrong_code_fuel: Option<u64>,
    ) -> Observation {
        if let Some(signal) = status_signal(&outcome.status) {
            return ice_observation(intern(&format!(
                "signal {signal} ({})",
                signal_name(signal)
            )));
        }
        match outcome.status.code() {
            Some(0) => self.triage_run(source, &outcome.stdout, wrong_code_fuel),
            Some(1) => Observation {
                unsupported: true,
                ..Observation::default()
            },
            Some(code) => ice_observation(crash_signature(code, &outcome.stderr)),
            // No exit code and no signal: nothing more specific to say.
            None => ice_observation(intern("unknown termination")),
        }
    }

    /// Triage of a successful compile+run: parse protocol stdout, then
    /// (when wrong-code checking is on) compare differentially against
    /// the UB-free reference interpretation.
    fn triage_run(&self, source: &str, stdout: &str, wrong_code_fuel: Option<u64>) -> Observation {
        let Some(report) = parse_protocol(stdout) else {
            return ice_observation(intern("garbage stdout"));
        };
        let Some(fuel) = wrong_code_fuel else {
            return Observation::default();
        };
        let Ok(prog) = spe_minic::parse(source) else {
            // The external tool accepted what the reference cannot
            // parse: no baseline, no verdict.
            return Observation {
                unsupported: true,
                ..Observation::default()
            };
        };
        match spe_simcc::interp::run(&prog, spe_simcc::reference_limits(fuel)) {
            Err(_) => Observation {
                reference_ub: true,
                ..Observation::default()
            },
            Ok(expected) => {
                let divergence = match &report {
                    RunReport::Trapped => Some(Divergence::Trap),
                    RunReport::Exited { code, .. } if *code != expected.exit_code => {
                        Some(Divergence::ExitCode)
                    }
                    RunReport::Exited { output, .. } if *output != expected.output.join("\n") => {
                        Some(Divergence::Output)
                    }
                    RunReport::Exited { .. } => None,
                };
                Observation {
                    wrong_code: divergence.is_some(),
                    divergence,
                    ..Observation::default()
                }
            }
        }
    }
}

impl CompilerBackend for SubprocBackend {
    fn id(&self) -> &str {
        SUBPROC_BACKEND_ID
    }

    fn config_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for token in &self.config.command {
            h = fnv(h, token.as_bytes());
            h = fnv(h, &[0]);
        }
        for (k, v) in &self.config.env {
            h = fnv(h, k.as_bytes());
            h = fnv(h, b"=");
            h = fnv(h, v.as_bytes());
            h = fnv(h, &[0]);
        }
        h = fnv(h, &u128::to_le_bytes(self.config.timeout.as_millis()));
        fnv(h, &u32::to_le_bytes(self.config.retries))
    }

    fn observe_config(
        &self,
        source: &str,
        cc: Compiler,
        wrong_code_fuel: Option<u64>,
    ) -> Result<Observation, BackendError> {
        let _slot = self.pool.acquire();
        let job = self
            .base
            .join(format!("job-{}", self.seq.fetch_add(1, Ordering::Relaxed)));
        std::fs::create_dir_all(&job)
            .map_err(|e| BackendError::new(format!("create scratch {job:?}: {e}")))?;
        let source_path = job.join("input.c");
        std::fs::write(&source_path, source)
            .map_err(|e| BackendError::new(format!("write {source_path:?}: {e}")))?;

        // Bounded retry of the transient classes: spawn failures and
        // timeouts. Everything else is a final verdict on attempt one.
        let mut last: std::io::Result<Outcome> = Err(std::io::Error::other("unattempted"));
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                spe_telemetry::global().counter(spe_telemetry::names::SUBPROC_RETRIES, 1);
            }
            last = self.run_once(cc, &source_path, &job);
            match &last {
                Err(_) => continue,
                Ok(outcome) if outcome.timed_out => continue,
                Ok(_) => break,
            }
        }
        match last {
            Err(e) => {
                // Persistent machinery failure: the caller quarantines
                // this job.
                spe_telemetry::global().counter(spe_telemetry::names::SUBPROC_QUARANTINES, 1);
                self.preserve(&job, "spawn failure");
                Err(BackendError::new(format!(
                    "cannot launch {:?}: {e}",
                    self.config.command[0]
                )))
            }
            Ok(outcome) if outcome.timed_out => {
                // Persistently over budget: a compiler-performance
                // verdict, exactly what the paper's slow-compile triage
                // class records.
                self.preserve(&job, "timeout");
                Ok(Observation {
                    slow_compile: vec![intern(&format!(
                        "wall-clock timeout after {}ms",
                        self.config.timeout.as_millis()
                    ))],
                    ..Observation::default()
                })
            }
            Ok(outcome) => {
                let obs = self.triage(source, &outcome, wrong_code_fuel);
                if obs.ice.is_some() {
                    self.preserve(&job, "compiler fault");
                } else {
                    let _ = std::fs::remove_dir_all(&job);
                }
                Ok(obs)
            }
        }
    }
}

impl Drop for SubprocBackend {
    fn drop(&mut self) {
        // Removes the base only when empty — preserved fault scratch
        // directories outlive the backend on purpose.
        let _ = std::fs::remove_dir(&self.base);
    }
}

/// Registers the `"subproc"` factory. Factory options are
/// whitespace-separated: optional leading `timeout_ms=<n>`,
/// `retries=<n>`, `procs=<n>` settings, then the command and its fixed
/// arguments — e.g. `"timeout_ms=5000 retries=2 /usr/bin/mycc --spe"`.
///
/// # Errors
///
/// [`BackendError`] when `"subproc"` is already registered.
pub fn register(registry: &mut BackendRegistry) -> Result<(), BackendError> {
    registry.register(SUBPROC_BACKEND_ID, |opts| {
        let mut config_keys = Vec::new();
        let mut command = Vec::new();
        for token in opts.split_whitespace() {
            if command.is_empty() && token.contains('=') {
                config_keys.push(token.to_string());
            } else {
                command.push(token.to_string());
            }
        }
        let mut config = SubprocConfig::new(command);
        for kv in config_keys {
            let (key, value) = kv.split_once('=').expect("filtered above");
            let parse = |what: &str| {
                value
                    .parse::<u64>()
                    .map_err(|_| BackendError::new(format!("bad {what}: {value:?}")))
            };
            match key {
                "timeout_ms" => config.timeout = Duration::from_millis(parse("timeout_ms")?),
                "retries" => config.retries = parse("retries")? as u32,
                "procs" => config.max_processes = parse("procs")?.max(1) as usize,
                other => {
                    return Err(BackendError::new(format!("unknown option {other:?}")));
                }
            }
        }
        Ok(Box::new(SubprocBackend::new(config)?))
    })
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// An ICE verdict whose triage string doubles as its dedup bug id; the
/// `pass` slot marks it as externally observed.
fn ice_observation(signature: &'static str) -> Observation {
    Observation {
        ice: Some(Ice {
            bug_id: signature,
            signature,
            pass: intern("external"),
        }),
        ..Observation::default()
    }
}

/// Crash signature of an abnormal exit: the first stderr line matching
/// a known compiler-crash pattern, else `abnormal exit <code>`.
fn crash_signature(code: i32, stderr: &str) -> &'static str {
    const PATTERNS: [&str; 5] = [
        "internal compiler error",
        "assertion",
        "panicked at",
        "Segmentation fault",
        "fatal error",
    ];
    for line in stderr.lines() {
        if PATTERNS.iter().any(|p| line.contains(p)) {
            return intern(line.trim());
        }
    }
    intern(&format!("abnormal exit {code}"))
}

fn signal_name(signal: i32) -> &'static str {
    match signal {
        4 => "SIGILL",
        6 => "SIGABRT",
        8 => "SIGFPE",
        9 => "SIGKILL",
        11 => "SIGSEGV",
        15 => "SIGTERM",
        _ => "unknown",
    }
}

#[cfg(unix)]
fn status_signal(status: &ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn status_signal(_status: &ExitStatus) -> Option<i32> {
    None
}

/// Parses protocol stdout; `None` is the garbage case.
fn parse_protocol(stdout: &str) -> Option<RunReport> {
    let mut lines = stdout.lines();
    let first = lines.next()?.trim_end();
    if first == "trap" {
        return Some(RunReport::Trapped);
    }
    let code = first.strip_prefix("exit ")?.trim().parse::<i64>().ok()?;
    let output: Vec<&str> = lines.collect();
    Some(RunReport::Exited {
        code,
        output: output.join("\n"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parses_exit_trap_and_rejects_garbage() {
        match parse_protocol("exit 42\nhello\nworld\n") {
            Some(RunReport::Exited { code, output }) => {
                assert_eq!(code, 42);
                assert_eq!(output, "hello\nworld");
            }
            _ => panic!("protocol"),
        }
        assert!(matches!(parse_protocol("trap\n"), Some(RunReport::Trapped)));
        assert!(parse_protocol("").is_none());
        assert!(parse_protocol("exit\n").is_none());
        assert!(parse_protocol("exit banana\n").is_none());
        assert!(parse_protocol("some linker noise\n").is_none());
    }

    #[test]
    fn crash_signatures_prefer_known_stderr_patterns() {
        assert_eq!(
            crash_signature(2, "note: x\ncc1: internal compiler error: in foo()\n"),
            "cc1: internal compiler error: in foo()"
        );
        assert_eq!(
            crash_signature(134, "Assertion `n > 0' failed — oh no".trim()),
            "abnormal exit 134" // capital-A Assertion is not in the pattern list
        );
        assert_eq!(crash_signature(3, "quiet\n"), "abnormal exit 3");
    }

    #[test]
    fn factory_parses_options_and_rejects_nonsense() {
        let mut registry = BackendRegistry::new();
        register(&mut registry).expect("fresh id");
        assert!(registry.create("subproc", "timeout_ms=250 retries=3 /bin/true -x").is_ok());
        assert!(registry.create("subproc", "").is_err()); // no command
        assert!(registry.create("subproc", "frobnicate=1 /bin/true").is_err());
        assert!(registry.create("subproc", "timeout_ms=banana /bin/true").is_err());
    }

    #[test]
    fn config_hash_tracks_command_and_limits() {
        let mk = |cmd: &[&str], ms: u64, retries: u32| {
            let mut c = SubprocConfig::new(cmd.iter().map(|s| s.to_string()).collect());
            c.timeout = Duration::from_millis(ms);
            c.retries = retries;
            SubprocBackend::new(c).expect("backend").config_hash()
        };
        let base = mk(&["/bin/true"], 1000, 1);
        assert_eq!(base, mk(&["/bin/true"], 1000, 1), "hash is stable");
        assert_ne!(base, mk(&["/bin/false"], 1000, 1), "command matters");
        assert_ne!(base, mk(&["/bin/true"], 2000, 1), "timeout matters");
        assert_ne!(base, mk(&["/bin/true"], 1000, 2), "retries matter");
    }
}
