//! Subprocess-oracle smoke demo: fuzz an "external" compiler.
//!
//! Drives three self-checking scenarios against the `fakecc` fixture
//! binary (the simulated compiler behind a real process boundary) and
//! exits nonzero if any expectation fails — CI runs this as the
//! subprocess-oracle smoke test:
//!
//! 1. **differential parity** — a parallel campaign through
//!    [`spe_subproc::SubprocBackend`] finds the same wrong-code
//!    signatures (and as many compiler crashes) as the in-process
//!    campaign on the seed corpus;
//! 2. **timeout triage** — a compiler that hangs is killed at the
//!    wall-clock budget and triaged as a slow-compile verdict, not a
//!    hang of the campaign;
//! 3. **quarantine** — a compiler that cannot even be spawned degrades
//!    the affected jobs to `BackendDegraded` findings while the
//!    campaign itself runs to completion.
//!
//! `FAKECC_BIN` overrides the fixture path (default: `fakecc` next to
//! this executable).

use spe_core::Algorithm;
use spe_harness::{
    run_campaign_parallel, run_campaign_parallel_with_backend, CampaignConfig, FindingKind,
};
use spe_simcc::backend::CompilerBackend;
use spe_simcc::{Compiler, CompilerId};
use spe_subproc::{SubprocBackend, SubprocConfig};
use std::collections::BTreeSet;
use std::time::Duration;

/// Runs one demo scenario under a `phase.<name>` telemetry span; the
/// wall-clock lines printed at the end read these spans back, so the
/// timings shown and the timings exported via `SPE_TRACE`/`SPE_METRICS`
/// are the same numbers.
fn phase<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let telemetry = spe_telemetry::global();
    let timer = spe_telemetry::Timer::always();
    let out = f();
    telemetry.span(
        &format!("{}{name}", spe_telemetry::names::PHASE_PREFIX),
        "",
        timer.stop_nanos(),
    );
    out
}

fn fakecc_path() -> String {
    if let Ok(path) = std::env::var("FAKECC_BIN") {
        return path;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let sibling = exe.with_file_name("fakecc");
    assert!(
        sibling.exists(),
        "fakecc not found at {sibling:?}; build it (cargo build -p spe-subproc --bins) \
         or set FAKECC_BIN"
    );
    sibling.to_string_lossy().into_owned()
}

fn main() {
    let telemetry = spe_telemetry::Telemetry::install_from_env();
    let fakecc = fakecc_path();
    let workers = 2;
    let config = CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 100,
        algorithm: Algorithm::Paper,
        check_wrong_code: true,
        fuel: 20_000,
    };
    let files = spe_corpus::seeds::all();

    // 1. Differential parity against the in-process campaign.
    let reference = phase("parity_reference", || {
        run_campaign_parallel(&files, &config, workers)
    });
    let mut subproc_config = SubprocConfig::new(vec![fakecc.clone()]);
    subproc_config.max_processes = workers;
    subproc_config.env = vec![("FAKECC_FUEL".into(), config.fuel.to_string())];
    let backend = SubprocBackend::new(subproc_config).expect("backend");
    let external = phase("parity_subproc", || {
        run_campaign_parallel_with_backend(&files, &config, &backend, workers)
    });

    let wrong_code = |report: &spe_harness::CampaignReport| -> BTreeSet<String> {
        report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::WrongCode)
            .map(|f| f.signature.clone())
            .collect()
    };
    let crashes = |report: &spe_harness::CampaignReport| -> usize {
        report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::Crash)
            .count()
    };
    assert_eq!(
        external.variants_tested, reference.variants_tested,
        "subprocess campaign tested a different variant count"
    );
    assert_eq!(
        wrong_code(&external),
        wrong_code(&reference),
        "wrong-code signatures diverged across the process boundary"
    );
    assert_eq!(
        crashes(&external),
        crashes(&reference),
        "crash report count diverged across the process boundary"
    );
    assert!(
        crashes(&external) > 0 && !wrong_code(&external).is_empty(),
        "seed corpus should surface both crash and wrong-code findings"
    );
    println!(
        "parity: {} variants, {} crash and {} wrong-code findings match the in-process campaign \
         ({} child processes)",
        external.variants_tested,
        crashes(&external),
        wrong_code(&external).len(),
        backend.stats().launches,
    );

    // 2. Timeout triage: a hanging compiler becomes a slow-compile
    // verdict within the wall-clock budget.
    let mut hang_config = SubprocConfig::new(vec![fakecc.clone()]);
    hang_config.env = vec![("FAKECC_MODE".into(), "hang".into())];
    hang_config.timeout = Duration::from_millis(300);
    hang_config.retries = 0;
    let hang = SubprocBackend::new(hang_config).expect("backend");
    let started = std::time::Instant::now();
    let obs = phase("timeout_triage", || {
        hang.observe_config("int main() { return 0; }", config.compilers[0], None)
            .expect("timeout is a verdict, not a backend error")
    });
    assert!(
        !obs.slow_compile.is_empty(),
        "hang should triage as slow-compile, got {obs:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "hanging child was not killed at the timeout"
    );
    assert_eq!(hang.stats().timeouts, 1);
    println!(
        "timeout: hanging compiler killed after {:?} and triaged as {:?}",
        started.elapsed(),
        obs.slow_compile
    );

    // 3. Quarantine: an unspawnable compiler degrades its jobs but the
    // campaign completes.
    let mut broken_config = SubprocConfig::new(vec!["/nonexistent/spe-demo-cc".into()]);
    broken_config.retries = 1;
    let broken = SubprocBackend::new(broken_config).expect("backend");
    let degraded = phase("quarantine", || {
        run_campaign_parallel_with_backend(&files, &config, &broken, workers)
    });
    assert!(
        degraded
            .findings
            .iter()
            .all(|f| f.kind == FindingKind::BackendDegraded),
        "an unspawnable backend can only produce quarantine findings"
    );
    assert!(
        !degraded.findings.is_empty(),
        "quarantine should be visible in the report"
    );
    println!(
        "quarantine: {} jobs degraded, campaign still completed",
        degraded.findings.len()
    );
    for (name, ms) in telemetry.phases() {
        println!("phase {name}: {ms:.1} ms");
    }
    println!("subprocess-oracle smoke: OK");
}
