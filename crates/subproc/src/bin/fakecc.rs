//! `fakecc` — the simulated compiler behind a real process boundary.
//!
//! This is the fixture "external compiler" for the subprocess oracle:
//! it speaks the `spe-subproc` invocation contract (`fakecc -O<n>
//! <source>`, protocol stdout, exit-status verdicts) and implements the
//! compile step with `spe_simcc`, so a subprocess campaign against it
//! exercises the full pipeline — seeded crash bugs become real nonzero
//! exits with `internal compiler error:` stderr lines, miscompilations
//! become genuine protocol-output divergences.
//!
//! Environment knobs:
//!
//! * `SPE_FAMILY` / `SPE_VERSION` — compiler identity (set by the
//!   backend from the campaign configuration); `gcc-sim` or
//!   `clang-sim`, default `gcc-sim` 700.
//! * `FAKECC_FUEL` — VM fuel for the compiled image (default 50 000).
//! * `FAKECC_MODE` — fault injection:
//!   `ok` (default), `exit2` (die with a fatal-error stderr line),
//!   `abort` (die by signal), `hang` (sleep past any timeout),
//!   `garbage` (exit 0 with non-protocol stdout), `flaky-hang` (hang
//!   once, then behave; needs `FAKECC_STATE` pointing at a writable
//!   directory shared across attempts).

use spe_simcc::{Compiler, CompileError, CompilerId};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mode = std::env::var("FAKECC_MODE").unwrap_or_default();
    match mode.as_str() {
        "exit2" => {
            eprintln!("fakecc: fatal error: injected fault");
            return ExitCode::from(2);
        }
        "abort" => std::process::abort(),
        "hang" => loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
        },
        "garbage" => {
            println!("fakecc: 0 warnings, 0 errors (but no protocol)");
            return ExitCode::SUCCESS;
        }
        "flaky-hang" => {
            let state = std::env::var("FAKECC_STATE").unwrap_or_default();
            let marker = std::path::Path::new(&state).join("fakecc-ran-once");
            if !marker.exists() {
                let _ = std::fs::write(&marker, b"1");
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(60));
                }
            }
            // Marker present: fall through and behave.
        }
        _ => {}
    }

    let mut opt = 2u8;
    let mut source = None;
    for arg in std::env::args().skip(1) {
        if let Some(level) = arg.strip_prefix("-O") {
            opt = level.parse().unwrap_or(2).min(3);
        } else {
            source = Some(arg);
        }
    }
    let Some(source) = source else {
        eprintln!("usage: fakecc -O<n> <source>");
        return ExitCode::from(2);
    };
    let Ok(text) = std::fs::read_to_string(&source) else {
        eprintln!("fakecc: cannot read {source}");
        return ExitCode::from(2);
    };
    let Ok(program) = spe_minic::parse(&text) else {
        eprintln!("fakecc: unsupported input");
        return ExitCode::from(1);
    };

    let version = std::env::var("SPE_VERSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(700);
    let id = match std::env::var("SPE_FAMILY").as_deref() {
        Ok("clang-sim") => CompilerId::clang(version),
        _ => CompilerId::gcc(version),
    };
    let fuel: u64 = std::env::var("FAKECC_FUEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);

    match Compiler::new(id, opt).compile(&program) {
        Err(CompileError::Ice(ice)) => {
            eprintln!(
                "fakecc: internal compiler error: {} in pass {}",
                ice.signature, ice.pass
            );
            ExitCode::from(2)
        }
        Err(CompileError::Unsupported(what)) => {
            eprintln!("fakecc: unsupported: {what}");
            ExitCode::from(1)
        }
        Ok(compiled) => {
            // The campaign-side VM allowance is 4× the reference fuel;
            // mirror it so fuel exhaustion means the same thing here.
            match compiled.execute(fuel * 4) {
                Ok(run) => {
                    println!("exit {}", run.exit_code);
                    for line in &run.output {
                        println!("{line}");
                    }
                }
                Err(_) => println!("trap"),
            }
            ExitCode::SUCCESS
        }
    }
}
