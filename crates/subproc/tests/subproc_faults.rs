//! Fault-injection suite for the hardened subprocess oracle.
//!
//! Every way an external compiler can misbehave — nonzero exits, death
//! by signal, hangs past the timeout, garbage or truncated protocol
//! stdout, flakiness that heals on retry, commands that cannot be
//! spawned at all — is injected through throwaway shell-script
//! "compilers" and asserted to land in exactly the triage class the
//! crate documents: verdicts for compiler behaviour, quarantine for
//! backend machinery, and never a hang or panic of the campaign.

use spe_core::Algorithm;
use spe_harness::checkpoint::{
    resume_campaign, run_campaign_checkpointed_with_backend, CheckpointOptions,
};
use spe_harness::{run_campaign_parallel_with_backend, CampaignConfig, FindingKind};
use spe_simcc::backend::CompilerBackend;
use spe_simcc::{Compiler, CompilerId, Divergence};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A throwaway directory under the target tmpdir, fresh per test.
fn fixture_dir(test: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("fixture dir");
    dir
}

/// Writes an executable `/bin/sh` fixture compiler.
fn write_script(dir: &Path, name: &str, body: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, format!("#!/bin/sh\n{body}\n")).expect("write script");
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755))
            .expect("chmod script");
    }
    path.to_string_lossy().into_owned()
}

/// A backend over `command`, scratching under the fixture dir so the
/// suite never litters the system temp directory.
fn backend_in(
    dir: &Path,
    command: &str,
    tweak: impl FnOnce(&mut spe_subproc::SubprocConfig),
) -> spe_subproc::SubprocBackend {
    let mut config = spe_subproc::SubprocConfig::new(vec![command.to_string()]);
    config.scratch_root = Some(dir.join("scratch"));
    config.retries = 0;
    tweak(&mut config);
    spe_subproc::SubprocBackend::new(config).expect("backend")
}

fn cc() -> Compiler {
    Compiler::new(CompilerId::gcc(700), 2)
}

const TRIVIAL: &str = "int main() { return 0; }";

#[test]
fn crash_stderr_line_becomes_the_ice_signature() {
    let dir = fixture_dir("crash-stderr");
    let script = write_script(
        &dir,
        "cc",
        "echo 'cc1plus: internal compiler error: injected fault' >&2\nexit 4",
    );
    let backend = backend_in(&dir, &script, |_| {});
    let obs = backend.observe_config(TRIVIAL, cc(), None).expect("verdict");
    let ice = obs.ice.expect("abnormal exit is an ICE verdict");
    assert_eq!(ice.signature, "cc1plus: internal compiler error: injected fault");
    assert_eq!(ice.bug_id, ice.signature, "triage line doubles as dedup id");
    assert_eq!(
        backend.stats().preserved.len(),
        1,
        "faulted job's scratch dir is preserved for debugging"
    );
    assert!(backend.stats().preserved[0].exists());
}

#[test]
fn quiet_abnormal_exit_is_an_ice_keyed_on_the_exit_code() {
    let dir = fixture_dir("quiet-exit");
    let script = write_script(&dir, "cc", "exit 7");
    let backend = backend_in(&dir, &script, |_| {});
    let obs = backend.observe_config(TRIVIAL, cc(), None).expect("verdict");
    assert_eq!(obs.ice.expect("ICE").signature, "abnormal exit 7");
}

#[test]
fn exit_one_is_a_rejected_program_not_a_bug() {
    let dir = fixture_dir("rejected");
    let script = write_script(&dir, "cc", "echo 'unsupported construct' >&2\nexit 1");
    let backend = backend_in(&dir, &script, |_| {});
    let obs = backend.observe_config(TRIVIAL, cc(), None).expect("verdict");
    assert!(obs.unsupported);
    assert!(obs.ice.is_none());
    assert!(
        backend.stats().preserved.is_empty(),
        "a rejection is not a fault; scratch is cleaned up"
    );
}

#[cfg(unix)]
#[test]
fn signal_death_is_an_ice_naming_the_signal() {
    let dir = fixture_dir("sigsegv");
    let script = write_script(&dir, "cc", "kill -SEGV $$");
    let backend = backend_in(&dir, &script, |_| {});
    let obs = backend.observe_config(TRIVIAL, cc(), None).expect("verdict");
    assert_eq!(obs.ice.expect("ICE").signature, "signal 11 (SIGSEGV)");
}

#[test]
fn hang_is_killed_at_the_timeout_and_triaged_slow_compile() {
    let dir = fixture_dir("hang");
    // `exec` replaces the shell so the kill reaches the sleeper itself.
    let script = write_script(&dir, "cc", "exec sleep 60");
    let backend = backend_in(&dir, &script, |c| {
        c.timeout = Duration::from_millis(200);
    });
    let started = Instant::now();
    let obs = backend.observe_config(TRIVIAL, cc(), None).expect("verdict");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "child was not killed at the 200ms timeout"
    );
    assert!(obs.ice.is_none());
    assert_eq!(obs.slow_compile.len(), 1, "timeout is a slow-compile verdict");
    assert!(obs.slow_compile[0].contains("timeout"));
    let stats = backend.stats();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.preserved.len(), 1, "timed-out job scratch preserved");
}

#[test]
fn garbage_and_truncated_stdout_are_ices() {
    let dir = fixture_dir("garbage");
    for (name, body) in [
        ("noise", "echo 'collect2: relocation chatter'"),
        ("truncated", "echo 'exit'"), // protocol keyword without a code
        ("empty", "true"),            // exit 0, nothing on stdout at all
    ] {
        let script = write_script(&dir, name, body);
        let backend = backend_in(&dir, &script, |_| {});
        let obs = backend.observe_config(TRIVIAL, cc(), None).expect("verdict");
        assert_eq!(
            obs.ice.expect("garbage is an ICE verdict").signature,
            "garbage stdout",
            "fixture {name}"
        );
    }
}

#[test]
fn protocol_divergences_map_onto_wrong_code_classes() {
    // Reference for TRIVIAL: exit 0, no output. Each lying compiler
    // must surface as wrong code with the precise divergence class the
    // in-process oracle would assign.
    let dir = fixture_dir("divergence");
    let cases = [
        ("exitcode", "echo 'exit 3'", Some(Divergence::ExitCode)),
        ("output", "printf 'exit 0\\nsurprise\\n'", Some(Divergence::Output)),
        ("trap", "echo 'trap'", Some(Divergence::Trap)),
        ("honest", "echo 'exit 0'", None),
    ];
    for (name, body, expected) in cases {
        let script = write_script(&dir, name, body);
        let backend = backend_in(&dir, &script, |_| {});
        let obs = backend
            .observe_config(TRIVIAL, cc(), Some(10_000))
            .expect("verdict");
        assert_eq!(obs.divergence, expected, "fixture {name}");
        assert_eq!(obs.wrong_code, expected.is_some(), "fixture {name}");
        assert!(obs.ice.is_none(), "fixture {name}");
    }
}

#[test]
fn flaky_hang_heals_within_the_retry_budget() {
    let dir = fixture_dir("flaky");
    let state = dir.join("state");
    std::fs::create_dir_all(&state).expect("state dir");
    // Hangs on the first invocation, then behaves: the bounded retry
    // policy must turn this into a clean verdict, not a timeout.
    let script = write_script(
        &dir,
        "cc",
        "if [ ! -e \"$FLAKY_STATE/mark\" ]; then : > \"$FLAKY_STATE/mark\"; exec sleep 60; fi\n\
         echo 'exit 0'",
    );
    let backend = backend_in(&dir, &script, |c| {
        c.timeout = Duration::from_millis(250);
        c.retries = 2;
        c.env = vec![(
            "FLAKY_STATE".to_string(),
            state.to_string_lossy().into_owned(),
        )];
    });
    let obs = backend
        .observe_config(TRIVIAL, cc(), Some(10_000))
        .expect("verdict");
    assert!(
        obs.slow_compile.is_empty() && obs.ice.is_none() && !obs.wrong_code,
        "retry should have produced the clean second-run verdict, got {obs:?}"
    );
    let stats = backend.stats();
    assert_eq!(stats.timeouts, 1, "first attempt timed out");
    assert!(stats.retries >= 1, "a retry happened");
    assert_eq!(stats.launches, 2, "exactly one retry was needed");
}

#[test]
fn successful_jobs_leave_no_scratch_behind() {
    let dir = fixture_dir("cleanup");
    let script = write_script(&dir, "cc", "echo 'exit 0'");
    let backend = backend_in(&dir, &script, |_| {});
    for _ in 0..5 {
        backend
            .observe_config(TRIVIAL, cc(), Some(10_000))
            .expect("verdict");
    }
    assert!(backend.stats().preserved.is_empty());
    let leftovers: Vec<_> = std::fs::read_dir(backend.scratch_base())
        .expect("scratch base")
        .collect();
    assert!(leftovers.is_empty(), "scratch dirs left behind: {leftovers:?}");
}

#[test]
fn unspawnable_command_is_a_backend_error_not_a_verdict() {
    let dir = fixture_dir("unspawnable");
    let backend = backend_in(&dir, "/nonexistent/spe-test-cc", |c| c.retries = 1);
    let err = backend
        .observe_config(TRIVIAL, cc(), None)
        .expect_err("spawn failure is backend machinery, not a verdict");
    assert!(err.what.contains("cannot launch"), "got: {}", err.what);
    assert!(
        backend.stats().retries >= 1,
        "spawn failures are retried before giving up"
    );
}

/// The headline hardening property: a campaign over a backend that
/// persistently fails must terminate with the affected jobs quarantined
/// as `BackendDegraded` findings — never hang, never panic, never
/// abort the rest of the run.
#[test]
fn flaky_backend_campaign_terminates_with_quarantined_jobs() {
    let dir = fixture_dir("quarantine-campaign");
    let files = spe_corpus::seeds::all();
    let config = CampaignConfig {
        compilers: vec![Compiler::new(CompilerId::gcc(700), 2)],
        budget: 40,
        algorithm: Algorithm::Paper,
        check_wrong_code: false,
        fuel: 10_000,
    };
    let backend = backend_in(&dir, "/nonexistent/spe-test-cc", |_| {});
    let report = run_campaign_parallel_with_backend(&files, &config, &backend, 4);
    assert!(!report.findings.is_empty(), "quarantine must be visible");
    for f in &report.findings {
        assert_eq!(f.kind, FindingKind::BackendDegraded);
        assert!(f.signature.contains("backend degraded"));
        assert!(f.signature.contains("cannot launch"));
        assert!(!f.reproducer.is_empty(), "failing variant is carried along");
    }

    // Checkpointed flavour: the quarantine is durable (the job is
    // recorded done), and the journal is pinned to this backend — a
    // plain in-process resume must be refused, not silently mixed.
    let journal = dir.join("campaign.journal");
    let status = run_campaign_checkpointed_with_backend(
        &files,
        &config,
        2,
        &journal,
        &CheckpointOptions::default(),
        &backend,
    )
    .expect("campaign completes despite the degraded backend");
    let report = status.into_report().expect("complete, not interrupted");
    assert!(report
        .findings
        .iter()
        .all(|f| f.kind == FindingKind::BackendDegraded));
    let refusal = resume_campaign(&journal, 2, &CheckpointOptions::default())
        .expect_err("in-process resume of a subproc journal must be refused");
    let message = refusal.to_string();
    assert!(
        message.contains("subproc") && message.contains("simcc"),
        "refusal names both backends: {message}"
    );
}
