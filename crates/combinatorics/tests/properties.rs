//! Property-based tests of the SPE combinatorics invariants.

use proptest::prelude::*;
use spe_bignum::BigUint;
use spe_combinatorics::{
    brute, canonical_count, canonical_solutions, constrained_count, labels_to_rgs, orbit_count,
    paper_count, paper_solutions, partitions_at_most, rgs_block_count, rgs_completions,
    rgs_to_blocks, shards, ConstrainedRgs, FlatInstance, FlatScope, Rgs,
};

/// Strategy: a small flat instance (global holes/vars plus up to two
/// scopes) whose naive product stays brute-forceable.
fn small_instance() -> impl Strategy<Value = FlatInstance> {
    (
        0usize..4, // global holes
        1usize..4, // global vars
        proptest::collection::vec((1usize..3, 1usize..3), 0..3),
    )
        .prop_map(|(g, kg, scopes)| {
            let mut next = g;
            let scopes = scopes
                .into_iter()
                .map(|(holes, vars)| {
                    let hs = (next..next + holes).collect();
                    next += holes;
                    FlatScope { holes: hs, vars }
                })
                .collect();
            FlatInstance::new((0..g).collect(), kg, scopes)
        })
        .prop_filter("keep the naive product brute-forceable", |inst| {
            inst.naive_count() <= BigUint::from(4000u64)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rgs_count_matches_stirling_sum(n in 0usize..8, k in 1usize..6) {
        prop_assert_eq!(
            BigUint::from(Rgs::new(n, k).count()),
            partitions_at_most(n as u32, k as u32)
        );
    }

    #[test]
    fn rgs_canonicalization_is_idempotent(labels in proptest::collection::vec(0usize..5, 0..12)) {
        let rgs = labels_to_rgs(&labels);
        prop_assert_eq!(labels_to_rgs(&rgs), rgs.clone());
        // And it is a valid restricted growth string.
        let mut max_seen: Option<usize> = None;
        for &v in &rgs {
            match max_seen {
                None => prop_assert_eq!(v, 0),
                Some(m) => prop_assert!(v <= m + 1),
            }
            max_seen = Some(max_seen.map_or(v, |m| m.max(v)));
        }
        let _ = rgs_block_count(&rgs);
    }

    #[test]
    fn canonical_count_matches_brute_force(inst in small_instance()) {
        let general = inst.to_general();
        prop_assert_eq!(
            canonical_count(&general).to_u64().expect("small"),
            brute::count_distinct_partitions(&general) as u64
        );
    }

    #[test]
    fn orbit_count_matches_brute_force(inst in small_instance()) {
        prop_assert_eq!(
            orbit_count(&inst).to_u64().expect("small"),
            brute::count_compact_orbits(&inst) as u64
        );
    }

    #[test]
    fn algorithm_counts_are_ordered(inst in small_instance()) {
        // Provable orderings: canonical <= orbit <= naive (partitions,
        // orbits and fillings form a refinement chain) and paper <= orbit
        // (the paper's solutions are (partition, pool) pairs, a subset of
        // the orbit representatives). canonical and paper are
        // *incomparable* in general: Example 6 has paper 36 > canonical
        // 35, while small-global-pool instances drop valid partitions
        // (see DESIGN.md §2).
        let c = canonical_count(&inst.to_general());
        let p = paper_count(&inst);
        let o = orbit_count(&inst);
        let n = inst.naive_count();
        prop_assert!(c <= o, "canonical {c:?} <= orbit {o:?}");
        prop_assert!(o <= n, "orbit {o:?} <= naive {n:?}");
        prop_assert!(p <= o, "paper {p:?} <= orbit {o:?}");
    }

    #[test]
    fn paper_enumeration_matches_paper_count(inst in small_instance()) {
        let (sols, truncated) = paper_solutions(&inst, 100_000);
        prop_assert!(!truncated);
        prop_assert_eq!(BigUint::from(sols.len()), paper_count(&inst));
    }

    #[test]
    fn paper_solutions_cover_each_hole_once(inst in small_instance()) {
        let n = inst.num_holes();
        let (sols, _) = paper_solutions(&inst, 20_000);
        for s in sols {
            let mut seen = vec![false; n];
            for b in &s.blocks {
                for &h in b {
                    prop_assert!(!seen[h], "hole {h} twice");
                    seen[h] = true;
                }
            }
            prop_assert!(seen.iter().all(|&x| x));
        }
    }

    #[test]
    fn paper_count_is_bounded_by_the_brute_filling_count(inst in small_instance()) {
        // The paper's enumeration set sits between the closed-form bounds:
        // canonical ≤ paper would NOT hold in general (canonical and paper
        // are incomparable, see DESIGN.md §2 and the
        // `algorithm_counts_are_ordered` property above), but paper is
        // always bounded by the brute-force filling count, and every count
        // is bounded by the naive product that `brute::Fillings` walks.
        let fillings = brute::Fillings::new(&inst.to_general()).count();
        prop_assert_eq!(inst.naive_count().to_u64().expect("small"), fillings as u64);
        let p = paper_count(&inst);
        prop_assert!(p <= BigUint::from(fillings), "paper {p:?} <= fillings {fillings}");
        let c = canonical_count(&inst.to_general());
        prop_assert!(c <= BigUint::from(fillings), "canonical {c:?} <= fillings {fillings}");
    }

    #[test]
    fn unscoped_paper_count_matches_brute_filling_classes(n in 0usize..7, k in 1usize..5) {
        // With a single scope the paper's solution set is exactly one
        // representative per distinct partition of the fillings, so the
        // closed-form count equals the brute `Fillings` count after
        // partition dedup (and canonical ≤ paper ≤ naive holds with both
        // bounds provable).
        let inst = FlatInstance::unscoped(n, k);
        let general = inst.to_general();
        let classes = brute::count_distinct_partitions(&general) as u64;
        let p = paper_count(&inst);
        prop_assert_eq!(p.to_u64().expect("small"), classes);
        let c = canonical_count(&general);
        let naive = inst.naive_count();
        prop_assert!(c <= p.clone(), "canonical {c:?} <= paper {p:?}");
        prop_assert!(p <= naive.clone(), "paper {p:?} <= naive {naive:?}");
    }

    #[test]
    fn labels_to_rgs_roundtrips_through_blocks(labels in proptest::collection::vec(0usize..6, 0..12)) {
        // labels_to_rgs ∘ rgs_to_blocks is the identity on canonical RGSs:
        // rebuilding the string from its blocks and re-canonicalizing
        // changes nothing.
        let rgs = labels_to_rgs(&labels);
        let blocks = rgs_to_blocks(&rgs);
        let mut rebuilt = vec![usize::MAX; rgs.len()];
        for (b, members) in blocks.iter().enumerate() {
            prop_assert!(!members.is_empty(), "block {b} of {rgs:?} is empty");
            for &m in members {
                rebuilt[m] = b;
            }
        }
        prop_assert_eq!(&rebuilt, &rgs);
        prop_assert_eq!(labels_to_rgs(&rebuilt), rgs);
    }

    #[test]
    fn completions_of_every_prefix_are_exact(n in 1usize..8, k in 1usize..5, depth in 1usize..4) {
        // rgs_completions must agree with brute enumeration for every
        // prefix of the given depth, and the empty prefix is Equation (1).
        let depth = depth.min(n);
        prop_assert_eq!(rgs_completions(0, n, k), partitions_at_most(n as u32, k as u32));
        for prefix in Rgs::new(depth, k) {
            let brute_count = Rgs::new(n, k)
                .filter(|s| s[..depth] == prefix[..])
                .count() as u64;
            let fast = rgs_completions(rgs_block_count(&prefix), n - depth, k);
            prop_assert_eq!(fast.to_u64(), Some(brute_count), "prefix {:?}", prefix);
        }
    }

    #[test]
    fn shards_cover_the_rgs_space_exactly(n in 0usize..9, k in 1usize..6, want in 1usize..9) {
        // Union of all shards == the serial lexicographic sequence, with
        // no duplicates and no gaps, and declared sizes exact.
        let cut = shards(n, k, want);
        let merged: Vec<Vec<usize>> = cut.iter().flat_map(|s| s.iter()).collect();
        let serial: Vec<Vec<usize>> = Rgs::new(n, k).collect();
        prop_assert_eq!(&merged, &serial);
        let sized: BigUint = cut.iter().map(|s| &s.size).sum();
        prop_assert_eq!(sized, BigUint::from(serial.len() as u64));
    }

    #[test]
    fn even_ranges_partition_the_index_space_exactly(total in 0usize..400, parts in 1usize..12) {
        // Brute-force coverage: every index of 0..total is owned by
        // exactly one range; ranges are in order, contiguous, and
        // near-even (lengths differ by at most one).
        use spe_combinatorics::even_ranges;
        let ranges = even_ranges(total, parts);
        prop_assert_eq!(ranges.len(), parts);
        let mut owners = vec![0usize; total];
        for r in &ranges {
            for i in r.clone() {
                owners[i] += 1;
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1), "each index owned exactly once");
        prop_assert_eq!(ranges.first().map(|r| r.start), Some(0));
        prop_assert_eq!(ranges.last().map(|r| r.end), Some(total));
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start, "contiguous, in order");
        }
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(max - min <= 1, "near-even: {lens:?}");
    }

    #[test]
    fn even_ranges_owner_is_stable_under_part_count_one(total in 0usize..64) {
        use spe_combinatorics::even_ranges;
        prop_assert_eq!(even_ranges(total, 1), vec![0..total]);
        // parts = 0 is clamped to one covering range, never a panic.
        prop_assert_eq!(even_ranges(total, 0), vec![0..total]);
    }

    #[test]
    fn canonical_shard_union_matches_serial(inst in small_instance(), want in 1usize..6) {
        // Shard-bounded canonical enumeration covers the serial sequence
        // exactly, for arbitrary scoped instances and shard counts.
        use spe_combinatorics::{canonical_solutions, canonical_solutions_shard};
        let general = inst.to_general();
        let serial = canonical_solutions(&general, usize::MAX).0;
        let merged: Vec<Vec<usize>> = shards(general.num_holes(), general.num_vars, want)
            .iter()
            .flat_map(|s| canonical_solutions_shard(&general, s, usize::MAX).0)
            .collect();
        prop_assert_eq!(merged, serial);
    }

    #[test]
    fn skip_to_resumes_exactly_where_serial_left_off(n in 1usize..8, k in 1usize..5, at in 0usize..200) {
        // Resuming from the prefix of the `at`-th string yields exactly
        // the serial tail starting at that string.
        let serial: Vec<Vec<usize>> = Rgs::new(n, k).collect();
        let at = at % serial.len();
        let mut resumed = Rgs::new(n, k);
        resumed.skip_to(&serial[at]);
        let tail: Vec<Vec<usize>> = resumed.collect();
        prop_assert_eq!(&tail[..], &serial[at..]);
    }

    #[test]
    fn single_scope_instances_agree_on_all_semantics(n in 0usize..7, k in 1usize..6) {
        let inst = FlatInstance::unscoped(n, k);
        let c = canonical_count(&inst.to_general());
        let p = paper_count(&inst);
        let o = orbit_count(&inst);
        prop_assert_eq!(&c, &p);
        prop_assert_eq!(&c, &o);
        prop_assert_eq!(c, partitions_at_most(n as u32, k as u32));
    }

    #[test]
    fn constrained_total_matches_brute_force(inst in small_instance()) {
        // The prefix-count DP agrees with both the pruned enumerator and
        // the exponential oracle on every small constrained instance.
        let general = inst.to_general();
        let brute = brute::count_distinct_partitions(&general) as u64;
        prop_assert_eq!(constrained_count(&general).to_u64(), Some(brute));
        prop_assert_eq!(canonical_count(&general).to_u64(), Some(brute));
    }

    #[test]
    fn constrained_prefix_counts_agree_with_enumeration(
        inst in small_instance(),
        depth in 1usize..4,
    ) {
        // Group the serial canonical sequence by its depth-d prefixes:
        // each prefix must weigh exactly its number of completions, and
        // unseen-but-valid prefixes must weigh zero.
        let general = inst.to_general();
        let serial = canonical_solutions(&general, usize::MAX).0;
        let d = depth.min(general.num_holes());
        let mut by_prefix: std::collections::BTreeMap<Vec<usize>, u64> =
            std::collections::BTreeMap::new();
        for rgs in &serial {
            *by_prefix.entry(rgs[..d].to_vec()).or_insert(0) += 1;
        }
        let mut space = ConstrainedRgs::new(&general);
        for (prefix, expect) in &by_prefix {
            prop_assert_eq!(
                space.prefix_completions(prefix).to_u64(),
                Some(*expect),
                "prefix {:?}",
                prefix
            );
        }
        for prefix in Rgs::new(d, general.num_vars.min(d)) {
            if !by_prefix.contains_key(&prefix) {
                prop_assert_eq!(
                    space.prefix_completions(&prefix).to_u64(),
                    Some(0),
                    "dead prefix {:?}",
                    prefix
                );
            }
        }
    }

    #[test]
    fn constrained_unrank_inverts_the_canonical_sequence(inst in small_instance()) {
        let general = inst.to_general();
        let serial = canonical_solutions(&general, usize::MAX).0;
        let mut space = ConstrainedRgs::new(&general);
        prop_assert_eq!(space.total().to_u64(), Some(serial.len() as u64));
        for (i, rgs) in serial.iter().enumerate() {
            prop_assert_eq!(&space.unrank_u64(i as u64), rgs, "rank {}", i);
        }
    }

    #[test]
    fn constrained_skip_to_resumes_exactly(inst in small_instance(), at in 0usize..64) {
        let general = inst.to_general();
        let serial = canonical_solutions(&general, usize::MAX).0;
        if !serial.is_empty() {
            let at = at % serial.len();
            let mut space = ConstrainedRgs::new(&general);
            space.skip_to(&serial[at]);
            let tail: Vec<Vec<usize>> = space.collect();
            prop_assert_eq!(tail, serial[at..].to_vec());
        }
    }
}
