//! Property-based tests of the SPE combinatorics invariants.

use proptest::prelude::*;
use spe_bignum::BigUint;
use spe_combinatorics::{
    brute, canonical_count, labels_to_rgs, orbit_count, paper_count, paper_solutions,
    partitions_at_most, rgs_block_count, FlatInstance, FlatScope, Rgs,
};

/// Strategy: a small flat instance (global holes/vars plus up to two
/// scopes) whose naive product stays brute-forceable.
fn small_instance() -> impl Strategy<Value = FlatInstance> {
    (
        0usize..4,  // global holes
        1usize..4,  // global vars
        proptest::collection::vec((1usize..3, 1usize..3), 0..3),
    )
        .prop_map(|(g, kg, scopes)| {
            let mut next = g;
            let scopes = scopes
                .into_iter()
                .map(|(holes, vars)| {
                    let hs = (next..next + holes).collect();
                    next += holes;
                    FlatScope { holes: hs, vars }
                })
                .collect();
            FlatInstance::new((0..g).collect(), kg, scopes)
        })
        .prop_filter("keep the naive product brute-forceable", |inst| {
            inst.naive_count() <= BigUint::from(4000u64)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rgs_count_matches_stirling_sum(n in 0usize..8, k in 1usize..6) {
        prop_assert_eq!(
            BigUint::from(Rgs::new(n, k).count()),
            partitions_at_most(n as u32, k as u32)
        );
    }

    #[test]
    fn rgs_canonicalization_is_idempotent(labels in proptest::collection::vec(0usize..5, 0..12)) {
        let rgs = labels_to_rgs(&labels);
        prop_assert_eq!(labels_to_rgs(&rgs), rgs.clone());
        // And it is a valid restricted growth string.
        let mut max_seen: Option<usize> = None;
        for &v in &rgs {
            match max_seen {
                None => prop_assert_eq!(v, 0),
                Some(m) => prop_assert!(v <= m + 1),
            }
            max_seen = Some(max_seen.map_or(v, |m| m.max(v)));
        }
        let _ = rgs_block_count(&rgs);
    }

    #[test]
    fn canonical_count_matches_brute_force(inst in small_instance()) {
        let general = inst.to_general();
        prop_assert_eq!(
            canonical_count(&general).to_u64().expect("small"),
            brute::count_distinct_partitions(&general) as u64
        );
    }

    #[test]
    fn orbit_count_matches_brute_force(inst in small_instance()) {
        prop_assert_eq!(
            orbit_count(&inst).to_u64().expect("small"),
            brute::count_compact_orbits(&inst) as u64
        );
    }

    #[test]
    fn algorithm_counts_are_ordered(inst in small_instance()) {
        // Provable orderings: canonical <= orbit <= naive (partitions,
        // orbits and fillings form a refinement chain) and paper <= orbit
        // (the paper's solutions are (partition, pool) pairs, a subset of
        // the orbit representatives). canonical and paper are
        // *incomparable* in general: Example 6 has paper 36 > canonical
        // 35, while small-global-pool instances drop valid partitions
        // (see DESIGN.md §2).
        let c = canonical_count(&inst.to_general());
        let p = paper_count(&inst);
        let o = orbit_count(&inst);
        let n = inst.naive_count();
        prop_assert!(c <= o, "canonical {c:?} <= orbit {o:?}");
        prop_assert!(o <= n, "orbit {o:?} <= naive {n:?}");
        prop_assert!(p <= o, "paper {p:?} <= orbit {o:?}");
    }

    #[test]
    fn paper_enumeration_matches_paper_count(inst in small_instance()) {
        let (sols, truncated) = paper_solutions(&inst, 100_000);
        prop_assert!(!truncated);
        prop_assert_eq!(BigUint::from(sols.len()), paper_count(&inst));
    }

    #[test]
    fn paper_solutions_cover_each_hole_once(inst in small_instance()) {
        let n = inst.num_holes();
        let (sols, _) = paper_solutions(&inst, 20_000);
        for s in sols {
            let mut seen = vec![false; n];
            for b in &s.blocks {
                for &h in b {
                    prop_assert!(!seen[h], "hole {h} twice");
                    seen[h] = true;
                }
            }
            prop_assert!(seen.iter().all(|&x| x));
        }
    }

    #[test]
    fn single_scope_instances_agree_on_all_semantics(n in 0usize..7, k in 1usize..6) {
        let inst = FlatInstance::unscoped(n, k);
        let c = canonical_count(&inst.to_general());
        let p = paper_count(&inst);
        let o = orbit_count(&inst);
        prop_assert_eq!(&c, &p);
        prop_assert_eq!(&c, &o);
        prop_assert_eq!(c, partitions_at_most(n as u32, k as u32));
    }
}
