//! Orbit enumeration: exactly one representative per *compact-α-renaming*
//! equivalence class (Definition 2 extended with scopes, §3.2.2).
//!
//! A compact α-renaming permutes variables only within their own pool
//! (global pool, or one local scope's pool). Two fillings are equivalent
//! iff they induce the same partition of the holes *and* assign each block
//! a variable from the same pool. An orbit is therefore a pair
//! `(valid partition, feasible block→pool assignment)`; this module
//! enumerates those pairs for flat instances.
//!
//! Example 6 of the paper has 40 orbits, versus 36 solutions from the
//! paper's algorithm and 35 valid partitions; `tests/` cross-checks these
//! against brute force.

use crate::canonical::enumerate_canonical;
use crate::instance::{FlatInstance, PoolRef, ScopedSolution};
use crate::rgs_to_blocks;
use spe_bignum::BigUint;
use std::ops::ControlFlow;

/// Enumerates one representative per compact-α-equivalence class.
/// Returning [`ControlFlow::Break`] from `visit` stops early.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{enumerate_orbits, FlatInstance, FlatScope};
/// use std::ops::ControlFlow;
///
/// let fig7 = FlatInstance::new(vec![0, 1, 4], 2, vec![FlatScope { holes: vec![2, 3], vars: 2 }]);
/// let mut n = 0;
/// enumerate_orbits(&fig7, &mut |_s| { n += 1; ControlFlow::Continue(()) });
/// assert_eq!(n, 40);
/// ```
pub fn enumerate_orbits<F>(inst: &FlatInstance, visit: &mut F) -> ControlFlow<()>
where
    F: FnMut(&ScopedSolution) -> ControlFlow<()>,
{
    let general = inst.to_general();
    // Scope membership for pool feasibility: hole -> Some(scope index).
    let mut scope_of_hole: Vec<Option<usize>> = vec![None; general.num_holes()];
    for (si, s) in inst.scopes().iter().enumerate() {
        for &h in &s.holes {
            scope_of_hole[h] = Some(si);
        }
    }
    enumerate_canonical(&general, &mut |rgs| {
        let blocks = rgs_to_blocks(rgs);
        // Feasible pools per block.
        let feasible: Vec<Vec<PoolRef>> = blocks
            .iter()
            .map(|b| {
                let mut pools = Vec::new();
                if inst.global_vars() > 0 {
                    pools.push(PoolRef::Global);
                }
                let first = scope_of_hole[b[0]];
                if let Some(si) = first {
                    if b.iter().all(|&h| scope_of_hole[h] == Some(si)) {
                        pools.push(PoolRef::Local(si));
                    }
                }
                pools
            })
            .collect();
        assign_pools(inst, &blocks, &feasible, 0, &mut Vec::new(), visit)
    })
}

fn assign_pools<F>(
    inst: &FlatInstance,
    blocks: &[Vec<usize>],
    feasible: &[Vec<PoolRef>],
    idx: usize,
    chosen: &mut Vec<PoolRef>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&ScopedSolution) -> ControlFlow<()>,
{
    if idx == blocks.len() {
        return visit(&ScopedSolution {
            blocks: blocks.to_vec(),
            pools: chosen.clone(),
        });
    }
    for &pool in &feasible[idx] {
        let capacity = match pool {
            PoolRef::Global => inst.global_vars(),
            PoolRef::Local(s) => inst.scopes()[s].vars,
        };
        let used = chosen.iter().filter(|&&p| p == pool).count();
        if used >= capacity {
            continue;
        }
        chosen.push(pool);
        assign_pools(inst, blocks, feasible, idx + 1, chosen, visit)?;
        chosen.pop();
    }
    ControlFlow::Continue(())
}

/// Collects up to `limit` orbit representatives; the boolean reports
/// truncation.
pub fn orbit_solutions(inst: &FlatInstance, limit: usize) -> (Vec<ScopedSolution>, bool) {
    let mut out = Vec::new();
    let flow = enumerate_orbits(inst, &mut |s| {
        if out.len() >= limit {
            return ControlFlow::Break(());
        }
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    (out, flow.is_break())
}

/// Number of compact-α-equivalence classes, by pruned enumeration.
///
/// ```
/// use spe_combinatorics::{orbit_count, FlatInstance};
/// // Single scope: orbits coincide with partitions (Bell numbers).
/// assert_eq!(orbit_count(&FlatInstance::unscoped(5, 5)).to_u64(), Some(52));
/// ```
pub fn orbit_count(inst: &FlatInstance) -> BigUint {
    let mut n = 0u64;
    let _ = enumerate_orbits(inst, &mut |_| {
        n += 1;
        ControlFlow::Continue(())
    });
    BigUint::from(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::FlatScope;

    fn fig7() -> FlatInstance {
        FlatInstance::new(
            vec![0, 1, 4],
            2,
            vec![FlatScope {
                holes: vec![2, 3],
                vars: 2,
            }],
        )
    }

    #[test]
    fn example6_orbits_are_40() {
        assert_eq!(orbit_count(&fig7()).to_u64(), Some(40));
    }

    #[test]
    fn single_scope_orbits_match_bell() {
        for n in 0..6usize {
            let inst = FlatInstance::unscoped(n, n.max(1));
            assert_eq!(orbit_count(&inst), crate::bell(n as u32), "n = {n}");
        }
    }

    #[test]
    fn orbits_match_brute_force() {
        let cases = vec![
            fig7(),
            FlatInstance::new(
                vec![0],
                1,
                vec![FlatScope {
                    holes: vec![1, 2],
                    vars: 1,
                }],
            ),
            FlatInstance::new(
                vec![],
                2,
                vec![FlatScope {
                    holes: vec![0, 1],
                    vars: 2,
                }],
            ),
            FlatInstance::new(
                vec![0, 1],
                2,
                vec![
                    FlatScope {
                        holes: vec![2],
                        vars: 1,
                    },
                    FlatScope {
                        holes: vec![3],
                        vars: 1,
                    },
                ],
            ),
        ];
        for inst in cases {
            assert_eq!(
                orbit_count(&inst).to_u64(),
                Some(crate::brute::count_compact_orbits(&inst) as u64),
                "instance {inst:?}"
            );
        }
    }

    #[test]
    fn orbit_representatives_are_distinct() {
        let inst = fig7();
        let (sols, truncated) = orbit_solutions(&inst, 10_000);
        assert!(!truncated);
        let mut fingerprints = std::collections::HashSet::new();
        for s in &sols {
            assert!(
                fingerprints.insert(s.fingerprint(5)),
                "duplicate orbit representative {s:?}"
            );
        }
    }

    #[test]
    fn pool_capacities_respected() {
        let inst = fig7();
        let (sols, _) = orbit_solutions(&inst, 10_000);
        for s in &sols {
            let g = s
                .pools
                .iter()
                .filter(|p| matches!(p, PoolRef::Global))
                .count();
            let l = s
                .pools
                .iter()
                .filter(|p| matches!(p, PoolRef::Local(0)))
                .count();
            assert!(g <= 2 && l <= 2, "capacity violation in {s:?}");
        }
    }

    #[test]
    fn local_pool_only_for_scope_confined_blocks() {
        let inst = fig7();
        let (sols, _) = orbit_solutions(&inst, 10_000);
        let scope_holes = [2usize, 3];
        for s in &sols {
            for (b, pool) in s.blocks.iter().zip(&s.pools) {
                if let PoolRef::Local(0) = pool {
                    assert!(
                        b.iter().all(|h| scope_holes.contains(h)),
                        "non-scope hole got local pool: {s:?}"
                    );
                }
            }
        }
    }
}
