//! Brute-force oracles used to validate the fast enumerators.
//!
//! These walk the full naive Cartesian product of fillings (§3.1) and
//! group them by canonical forms; they are exponential and intended for
//! the small instances used in tests and for the paper-vs-naive
//! comparisons of the evaluation.

use crate::instance::{FlatInstance, GeneralInstance, PoolRef};
use crate::labels_to_rgs;
use std::collections::HashSet;

/// Iterator over every filling of the instance's holes: item `i` of each
/// yielded vector is the variable id filling hole `i`.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{Fillings, GeneralInstance};
///
/// let inst = GeneralInstance { allowed: vec![vec![0, 1], vec![0, 1]], num_vars: 2 };
/// assert_eq!(Fillings::new(&inst).count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Fillings<'a> {
    inst: &'a GeneralInstance,
    cursor: Vec<usize>,
    done: bool,
}

impl<'a> Fillings<'a> {
    /// Creates the iterator; instances with an empty allowed set yield
    /// nothing.
    pub fn new(inst: &'a GeneralInstance) -> Self {
        let done = inst.allowed.iter().any(|a| a.is_empty());
        Fillings {
            inst,
            cursor: vec![0; inst.allowed.len()],
            done,
        }
    }
}

impl Iterator for Fillings<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let item: Vec<usize> = self
            .cursor
            .iter()
            .enumerate()
            .map(|(i, &c)| self.inst.allowed[i][c])
            .collect();
        // Odometer increment.
        let mut i = self.cursor.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.cursor[i] + 1 < self.inst.allowed[i].len() {
                self.cursor[i] += 1;
                for j in i + 1..self.cursor.len() {
                    self.cursor[j] = 0;
                }
                break;
            }
        }
        Some(item)
    }
}

/// Number of distinct *partitions* induced by all fillings: the oracle for
/// [`crate::canonical_count`].
///
/// ```
/// use spe_combinatorics::{brute, FlatInstance};
/// let inst = FlatInstance::unscoped(4, 4).to_general();
/// assert_eq!(brute::count_distinct_partitions(&inst), 15); // Bell(4)
/// ```
pub fn count_distinct_partitions(inst: &GeneralInstance) -> usize {
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    for filling in Fillings::new(inst) {
        seen.insert(labels_to_rgs(&filling));
    }
    seen.len()
}

/// Number of compact-α-renaming orbits of all fillings: the oracle for
/// [`crate::orbit_count`]. Two fillings are identified iff one maps to the
/// other under a permutation of each variable pool.
///
/// The canonical form renames each pool's variables in order of first
/// occurrence in the filling, so equal canonical forms ⟺ same orbit.
pub fn count_compact_orbits(inst: &FlatInstance) -> usize {
    let general = inst.to_general();
    let mut seen: HashSet<Vec<(usize, usize)>> = HashSet::new();
    for filling in Fillings::new(&general) {
        seen.insert(compact_canonical_form(inst, &filling));
    }
    seen.len()
}

/// The per-pool first-occurrence canonical form of a filling: each
/// variable becomes `(pool index, rank of first occurrence within pool)`.
pub fn compact_canonical_form(inst: &FlatInstance, filling: &[usize]) -> Vec<(usize, usize)> {
    let mut rank: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut next_in_pool: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut out = Vec::with_capacity(filling.len());
    for &v in filling {
        let pool = match inst.pool_of_var(v) {
            PoolRef::Global => 0usize,
            PoolRef::Local(s) => s + 1,
        };
        let r = *rank.entry(v).or_insert_with(|| {
            let counter = next_in_pool.entry(pool).or_insert(0);
            let r = *counter;
            *counter += 1;
            r
        });
        out.push((pool, r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::FlatScope;

    #[test]
    fn fillings_enumerate_full_product() {
        let inst = GeneralInstance {
            allowed: vec![vec![0, 1], vec![0, 1, 2], vec![1]],
            num_vars: 3,
        };
        let all: Vec<_> = Fillings::new(&inst).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0, 1]);
        assert_eq!(all[5], vec![1, 2, 1]);
    }

    #[test]
    fn fillings_with_empty_allowed_set() {
        let inst = GeneralInstance {
            allowed: vec![vec![0], vec![]],
            num_vars: 1,
        };
        assert_eq!(Fillings::new(&inst).count(), 0);
    }

    #[test]
    fn fillings_zero_holes() {
        let inst = GeneralInstance {
            allowed: vec![],
            num_vars: 3,
        };
        assert_eq!(Fillings::new(&inst).count(), 1);
    }

    #[test]
    fn fig7_brute_counts() {
        let inst = FlatInstance::new(
            vec![0, 1, 4],
            2,
            vec![FlatScope {
                holes: vec![2, 3],
                vars: 2,
            }],
        );
        let general = inst.to_general();
        assert_eq!(Fillings::new(&general).count(), 128);
        assert_eq!(count_distinct_partitions(&general), 35);
        assert_eq!(count_compact_orbits(&inst), 40);
    }

    #[test]
    fn canonical_form_identifies_pool_swaps() {
        let inst = FlatInstance::new(
            vec![0, 1],
            2,
            vec![FlatScope {
                holes: vec![2],
                vars: 2,
            }],
        );
        // ⟨g0, g1, l0⟩ and ⟨g1, g0, l1⟩ are the same orbit.
        let a = compact_canonical_form(&inst, &[0, 1, 2]);
        let b = compact_canonical_form(&inst, &[1, 0, 3]);
        assert_eq!(a, b);
        // ⟨g0, g0, l0⟩ differs.
        let c = compact_canonical_form(&inst, &[0, 0, 2]);
        assert_ne!(a, c);
    }

    #[test]
    fn canonical_form_distinguishes_pools() {
        let inst = FlatInstance::new(
            vec![],
            1,
            vec![FlatScope {
                holes: vec![0],
                vars: 1,
            }],
        );
        // Global variable 0 vs local variable 1 are different orbits.
        let a = compact_canonical_form(&inst, &[0]);
        let b = compact_canonical_form(&inst, &[1]);
        assert_ne!(a, b);
    }
}
