//! Canonical partition enumeration: exactly one representative per *valid
//! partition* of the holes.
//!
//! A partition of the holes is **valid** iff its blocks admit a *system of
//! distinct representatives* (SDR): an injective assignment of a variable
//! to each block such that the variable is allowed in every hole of the
//! block. Validity is exactly the condition under which a partition is
//! realizable as a program, and two fillings with the same partition have
//! identical control- and data-dependence structure (§3.2 of the paper).
//!
//! This enumerator is duplicate-free and exhaustive with respect to
//! partition equivalence; see `DESIGN.md` §2 for how it relates to the
//! paper's algorithm (Example 6: canonical = 35, paper = 36).
//!
//! Counting, prefix weighing and unranking of the same sequence —
//! without enumerating it — live in [`crate::ConstrainedRgs`]: a
//! memoized DP over RGS prefixes whose pruning is exactly this module's
//! SDR check (`DESIGN.md §8` states the pruning lemma and the DP).
//! [`enumerate_canonical_shard`] plus that DP is what lets sharded
//! canonical enumeration start mid-space in closed form.

use crate::instance::GeneralInstance;
use crate::shard::RgsShard;
use spe_bignum::BigUint;
use std::ops::ControlFlow;

/// Returns `true` if the block constraint masks admit a system of distinct
/// representatives, via augmenting-path bipartite matching.
///
/// `masks[b]` has bit `v` set iff variable `v` may represent block `b`.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::has_sdr;
/// assert!(has_sdr(&[0b01, 0b10]));
/// assert!(has_sdr(&[0b11, 0b11]));
/// assert!(!has_sdr(&[0b01, 0b01]));
/// assert!(!has_sdr(&[0b0]));
/// ```
pub fn has_sdr(masks: &[u128]) -> bool {
    sdr_matching(masks).is_some()
}

/// Computes a system of distinct representatives for the block masks:
/// `result[b]` is the variable representing block `b`. Returns `None` when
/// no SDR exists.
///
/// Candidate variables are tried in *descending* id order so that local
/// variables (which receive the highest ids in
/// [`crate::FlatInstance::to_general`]) are preferred — producing the
/// "most local" realization the paper's examples use.
pub fn sdr_matching(masks: &[u128]) -> Option<Vec<usize>> {
    let mut var_of_block: Vec<Option<usize>> = vec![None; masks.len()];
    let mut block_of_var: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();

    fn try_assign(
        b: usize,
        masks: &[u128],
        visited: &mut u128,
        var_of_block: &mut [Option<usize>],
        block_of_var: &mut std::collections::HashMap<usize, usize>,
    ) -> bool {
        let mut m = masks[b] & !*visited;
        while m != 0 {
            // Highest set bit first: prefer local variables.
            let v = 127 - m.leading_zeros() as usize;
            m &= !(1u128 << v);
            *visited |= 1u128 << v;
            let displaced = block_of_var.get(&v).copied();
            match displaced {
                None => {
                    var_of_block[b] = Some(v);
                    block_of_var.insert(v, b);
                    return true;
                }
                Some(other) => {
                    if try_assign(other, masks, visited, var_of_block, block_of_var) {
                        var_of_block[b] = Some(v);
                        block_of_var.insert(v, b);
                        return true;
                    }
                }
            }
        }
        false
    }

    for b in 0..masks.len() {
        let mut visited = 0u128;
        if !try_assign(b, masks, &mut visited, &mut var_of_block, &mut block_of_var) {
            return None;
        }
    }
    Some(
        var_of_block
            .into_iter()
            .map(|v| v.expect("assigned"))
            .collect(),
    )
}

/// Enumerates every valid partition of the instance's holes exactly once,
/// in lexicographic RGS order. `visit` receives the RGS; returning
/// [`ControlFlow::Break`] stops early.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{enumerate_canonical, FlatInstance, FlatScope};
/// use std::ops::ControlFlow;
///
/// let fig7 = FlatInstance::new(vec![0, 1, 4], 2, vec![FlatScope { holes: vec![2, 3], vars: 2 }]);
/// let mut n = 0;
/// enumerate_canonical(&fig7.to_general(), &mut |_rgs| { n += 1; ControlFlow::Continue(()) });
/// assert_eq!(n, 35);
/// ```
pub fn enumerate_canonical<F>(inst: &GeneralInstance, visit: &mut F) -> ControlFlow<()>
where
    F: FnMut(&[usize]) -> ControlFlow<()>,
{
    enumerate_canonical_bounded(inst, &[], None, visit)
}

/// Enumerates only the valid partitions whose RGS falls inside `shard`
/// (see [`crate::shards`]), in lexicographic order. Subtrees outside the
/// shard's `[start, end)` boundary are pruned before recursion, so the
/// cost is proportional to the shard, not the whole space — this is how
/// solution *generation* (not just downstream streaming) parallelizes.
///
/// `shard` must describe the instance's space: `shard.n ==
/// inst.num_holes()`. The union over a boundary-chain of shards (as
/// produced by [`crate::shards`]) is exactly [`enumerate_canonical`]'s
/// sequence.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{
///     canonical_solutions, canonical_solutions_shard, shards, FlatInstance, FlatScope,
/// };
///
/// let inst = FlatInstance::new(vec![0, 1, 4], 2, vec![FlatScope { holes: vec![2, 3], vars: 2 }])
///     .to_general();
/// let serial = canonical_solutions(&inst, usize::MAX).0;
/// let merged: Vec<_> = shards(inst.num_holes(), inst.num_vars, 4)
///     .iter()
///     .flat_map(|s| canonical_solutions_shard(&inst, s, usize::MAX).0)
///     .collect();
/// assert_eq!(merged, serial);
/// ```
pub fn enumerate_canonical_shard<F>(
    inst: &GeneralInstance,
    shard: &RgsShard,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[usize]) -> ControlFlow<()>,
{
    assert_eq!(
        shard.n,
        inst.num_holes(),
        "shard describes a different space"
    );
    enumerate_canonical_bounded(inst, &shard.start, shard.end.as_deref(), visit)
}

/// Collects up to `limit` canonical partitions inside `shard`; the
/// boolean reports truncation.
pub fn canonical_solutions_shard(
    inst: &GeneralInstance,
    shard: &RgsShard,
    limit: usize,
) -> (Vec<Vec<usize>>, bool) {
    let mut out = Vec::new();
    let flow = enumerate_canonical_shard(inst, shard, &mut |rgs| {
        if out.len() >= limit {
            return ControlFlow::Break(());
        }
        out.push(rgs.to_vec());
        ControlFlow::Continue(())
    });
    (out, flow.is_break())
}

fn enumerate_canonical_bounded<F>(
    inst: &GeneralInstance,
    lower: &[usize],
    upper: Option<&[usize]>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[usize]) -> ControlFlow<()>,
{
    let n = inst.num_holes();
    let hole_masks: Vec<u128> = (0..n).map(|i| inst.mask(i)).collect();
    if hole_masks.contains(&0) {
        return ControlFlow::Continue(());
    }
    let mut rgs: Vec<usize> = Vec::with_capacity(n);
    let mut blocks: Vec<u128> = Vec::new();
    let bounds = Bounds { lower, upper };
    rec(
        &hole_masks,
        inst.num_vars,
        &mut rgs,
        &mut blocks,
        &bounds,
        !lower.is_empty(),
        upper.is_some(),
        visit,
    )
}

/// Shard boundary prefixes constraining the recursive walk. The `on_*`
/// recursion flags track whether the current prefix still equals the
/// corresponding boundary prefix (once it diverges, the boundary can no
/// longer constrain the subtree).
struct Bounds<'a> {
    /// Inclusive lower boundary (empty = start of the space).
    lower: &'a [usize],
    /// Exclusive upper boundary (`None` = end of the space).
    upper: Option<&'a [usize]>,
}

#[allow(clippy::too_many_arguments)]
fn rec<F>(
    hole_masks: &[u128],
    num_vars: usize,
    rgs: &mut Vec<usize>,
    blocks: &mut Vec<u128>,
    bounds: &Bounds<'_>,
    on_lower: bool,
    on_upper: bool,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[usize]) -> ControlFlow<()>,
{
    let i = rgs.len();
    // A prefix that has matched the whole exclusive upper boundary heads
    // a subtree entirely ≥ the boundary: prune it.
    if on_upper {
        if let Some(upper) = bounds.upper {
            if i == upper.len() {
                return ControlFlow::Continue(());
            }
        }
    }
    if i == hole_masks.len() {
        return visit(rgs);
    }
    let low = if on_lower && i < bounds.lower.len() {
        bounds.lower[i]
    } else {
        0
    };
    let high = match (on_upper, bounds.upper) {
        // `i < upper.len()` holds here: equality was pruned above.
        (true, Some(upper)) => upper[i],
        _ => usize::MAX,
    };
    // Join an existing block.
    for b in 0..blocks.len() {
        if b < low || b > high {
            continue;
        }
        let merged = blocks[b] & hole_masks[i];
        if merged == 0 {
            continue;
        }
        let saved = blocks[b];
        blocks[b] = merged;
        if has_sdr(blocks) {
            rgs.push(b);
            rec(
                hole_masks,
                num_vars,
                rgs,
                blocks,
                bounds,
                on_lower && b == low && i < bounds.lower.len(),
                on_upper && b == high,
                visit,
            )?;
            rgs.pop();
        }
        blocks[b] = saved;
    }
    // Open a new block.
    let b = blocks.len();
    if b < num_vars && b >= low && b <= high {
        blocks.push(hole_masks[i]);
        if has_sdr(blocks) {
            rgs.push(b);
            rec(
                hole_masks,
                num_vars,
                rgs,
                blocks,
                bounds,
                on_lower && b == low && i < bounds.lower.len(),
                on_upper && b == high,
                visit,
            )?;
            rgs.pop();
        }
        blocks.pop();
    }
    ControlFlow::Continue(())
}

/// Collects up to `limit` canonical partitions; the boolean reports
/// truncation.
pub fn canonical_solutions(inst: &GeneralInstance, limit: usize) -> (Vec<Vec<usize>>, bool) {
    let mut out = Vec::new();
    let flow = enumerate_canonical(inst, &mut |rgs| {
        if out.len() >= limit {
            return ControlFlow::Break(());
        }
        out.push(rgs.to_vec());
        ControlFlow::Continue(())
    });
    (out, flow.is_break())
}

/// Number of valid partitions, computed by exhaustive (pruned)
/// enumeration. Intended for instances within the paper's per-file variant
/// budget; use [`crate::paper_count`] for closed-form magnitude estimates.
///
/// ```
/// use spe_combinatorics::{canonical_count, FlatInstance};
/// // Single scope: every partition is valid, so this is Bell(5) = 52.
/// assert_eq!(canonical_count(&FlatInstance::unscoped(5, 5).to_general()).to_u64(), Some(52));
/// ```
pub fn canonical_count(inst: &GeneralInstance) -> BigUint {
    let mut n = 0u64;
    let _ = enumerate_canonical(inst, &mut |_| {
        n += 1;
        ControlFlow::Continue(())
    });
    BigUint::from(n)
}

/// Computes the SDR-based variable assignment for a partition given as an
/// RGS over the instance's holes: `result[block]` is the chosen variable.
/// Returns `None` if the partition is not valid for the instance.
///
/// ```
/// use spe_combinatorics::{assignment_for_rgs, GeneralInstance};
///
/// let inst = GeneralInstance { allowed: vec![vec![0], vec![0, 1]], num_vars: 2 };
/// assert_eq!(assignment_for_rgs(&inst, &[0, 1]), Some(vec![0, 1]));
/// assert_eq!(assignment_for_rgs(&inst, &[0, 0]), Some(vec![0]));
/// ```
pub fn assignment_for_rgs(inst: &GeneralInstance, rgs: &[usize]) -> Option<Vec<usize>> {
    assert_eq!(rgs.len(), inst.num_holes(), "RGS length must match holes");
    let nblocks = crate::rgs_block_count(rgs);
    let all_vars: u128 = if inst.num_vars >= 128 {
        u128::MAX
    } else {
        (1u128 << inst.num_vars) - 1
    };
    let mut masks = vec![all_vars; nblocks];
    for (i, &b) in rgs.iter().enumerate() {
        masks[b] &= inst.mask(i);
    }
    sdr_matching(&masks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{FlatInstance, FlatScope};

    fn fig7() -> GeneralInstance {
        FlatInstance::new(
            vec![0, 1, 4],
            2,
            vec![FlatScope {
                holes: vec![2, 3],
                vars: 2,
            }],
        )
        .to_general()
    }

    #[test]
    fn example6_canonical_is_35() {
        assert_eq!(canonical_count(&fig7()).to_u64(), Some(35));
    }

    #[test]
    fn single_scope_matches_bell() {
        for n in 0..7usize {
            let inst = FlatInstance::unscoped(n, n.max(1)).to_general();
            assert_eq!(canonical_count(&inst), crate::bell(n as u32), "n = {n}");
        }
    }

    #[test]
    fn bounded_blocks_match_stirling_sums() {
        let inst = FlatInstance::unscoped(6, 2).to_general();
        assert_eq!(canonical_count(&inst), crate::partitions_at_most(6, 2));
    }

    #[test]
    fn partitions_are_unique_and_lexicographic() {
        let (sols, truncated) = canonical_solutions(&fig7(), 10_000);
        assert!(!truncated);
        for w in sols.windows(2) {
            assert!(
                w[0] < w[1],
                "not strictly increasing: {:?} {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn all_emitted_partitions_have_sdr() {
        let inst = fig7();
        let (sols, _) = canonical_solutions(&inst, 10_000);
        for rgs in &sols {
            assert!(
                assignment_for_rgs(&inst, rgs).is_some(),
                "partition {rgs:?} has no SDR"
            );
        }
    }

    #[test]
    fn shard_union_matches_serial_canonical_enumeration() {
        // For several shard counts, the union of shard-bounded canonical
        // enumerations is exactly the serial sequence.
        let inst = fig7();
        let serial = canonical_solutions(&inst, usize::MAX).0;
        for want in [1usize, 2, 3, 4, 8] {
            let cut = crate::shards(inst.num_holes(), inst.num_vars, want);
            let merged: Vec<Vec<usize>> = cut
                .iter()
                .flat_map(|s| canonical_solutions_shard(&inst, s, usize::MAX).0)
                .collect();
            assert_eq!(merged, serial, "{want} shards");
        }
    }

    #[test]
    fn shard_enumeration_prunes_outside_the_boundary() {
        // Every partition a shard emits must satisfy the shard's own
        // membership predicate.
        let inst = fig7();
        for shard in crate::shards(inst.num_holes(), inst.num_vars, 4) {
            for rgs in canonical_solutions_shard(&inst, &shard, usize::MAX).0 {
                assert!(shard.contains(&rgs), "{rgs:?} outside {shard:?}");
            }
        }
    }

    #[test]
    fn shard_enumeration_on_unscoped_instances() {
        // Single scope: canonical partitions are all partitions, so shard
        // unions must reproduce the full Bell-number sequence.
        for n in 1..7usize {
            let inst = FlatInstance::unscoped(n, n).to_general();
            let serial = canonical_solutions(&inst, usize::MAX).0;
            let merged: Vec<Vec<usize>> = crate::shards(n, n, 3)
                .iter()
                .flat_map(|s| canonical_solutions_shard(&inst, s, usize::MAX).0)
                .collect();
            assert_eq!(merged, serial, "n = {n}");
        }
    }

    #[test]
    fn matches_brute_force_distinct_partitions() {
        let inst = fig7();
        assert_eq!(
            canonical_count(&inst).to_u64(),
            Some(crate::brute::count_distinct_partitions(&inst) as u64)
        );
    }

    #[test]
    fn empty_allowed_set_yields_nothing() {
        let inst = GeneralInstance {
            allowed: vec![vec![0], vec![]],
            num_vars: 2,
        };
        assert_eq!(canonical_count(&inst).to_u64(), Some(0));
    }

    #[test]
    fn sdr_prefers_local_variables() {
        // Block 0 may use {0, 3}; variable 3 (the "most local") wins.
        assert_eq!(sdr_matching(&[0b1001]), Some(vec![3]));
    }

    #[test]
    fn sdr_reassigns_via_augmenting_path() {
        // Block 0: {1}, block 1: {0, 1} — block 1 must cede variable 1.
        assert_eq!(sdr_matching(&[0b10, 0b11]), Some(vec![1, 0]));
    }

    #[test]
    fn disjoint_type_groups_multiply() {
        // Two type groups that cannot mix: holes 0,1 allow {0,1}, holes
        // 2,3 allow {2,3}. Valid partitions = B-like product: partitions
        // of each pair (2 each) = 4.
        let inst = GeneralInstance {
            allowed: vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]],
            num_vars: 4,
        };
        assert_eq!(canonical_count(&inst).to_u64(), Some(4));
    }

    #[test]
    fn assignment_respects_allowed_sets() {
        let inst = fig7();
        let (sols, _) = canonical_solutions(&inst, 10_000);
        for rgs in &sols {
            let assign = assignment_for_rgs(&inst, rgs).expect("valid partition");
            for (hole, &b) in rgs.iter().enumerate() {
                assert!(
                    inst.allowed[hole].contains(&assign[b]),
                    "hole {hole} got disallowed variable {} in {rgs:?}",
                    assign[b]
                );
            }
            // Injectivity.
            let mut seen = std::collections::HashSet::new();
            for &v in &assign {
                assert!(seen.insert(v), "variable {v} reused in {rgs:?}");
            }
        }
    }
}
