//! Lexicographic combination generation — the paper's `COMBINATIONS(Q, k)`.

/// Iterator over all `k`-element subsets of `{0, 1, …, n-1}` in
/// lexicographic order.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::Combinations;
///
/// let all: Vec<_> = Combinations::new(4, 2).collect();
/// assert_eq!(all, vec![
///     vec![0, 1], vec![0, 2], vec![0, 3],
///     vec![1, 2], vec![1, 3], vec![2, 3],
/// ]);
/// ```
#[derive(Debug, Clone)]
pub struct Combinations {
    indices: Vec<usize>,
    n: usize,
    started: bool,
    done: bool,
}

impl Combinations {
    /// Creates the iterator; `k > n` yields nothing, `k == 0` yields one
    /// empty subset.
    pub fn new(n: usize, k: usize) -> Self {
        Combinations {
            indices: (0..k).collect(),
            n,
            started: false,
            done: k > n,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.indices.clone());
        }
        let k = self.indices.len();
        if k == 0 {
            self.done = true;
            return None;
        }
        // Find the rightmost index that can advance.
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return None;
            }
            i -= 1;
            if self.indices[i] < self.n - (k - i) {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                return Some(self.indices.clone());
            }
        }
    }
}

/// Binomial coefficient `C(n, k)` as `u128`; saturates on overflow.
///
/// ```
/// assert_eq!(spe_combinatorics::binomial(5, 2), 10);
/// assert_eq!(spe_combinatorics::binomial(5, 6), 0);
/// ```
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = match acc.checked_mul((n - i) as u128) {
            Some(v) => v / (i + 1) as u128,
            None => return u128::MAX,
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomial() {
        for n in 0..8usize {
            for k in 0..=n {
                assert_eq!(
                    Combinations::new(n, k).count() as u128,
                    binomial(n as u64, k as u64),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn empty_subset() {
        let all: Vec<_> = Combinations::new(3, 0).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn oversized_subset() {
        assert_eq!(Combinations::new(2, 3).count(), 0);
    }

    #[test]
    fn lexicographic_and_sorted() {
        let all: Vec<_> = Combinations::new(6, 3).collect();
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
        for c in &all {
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, c);
        }
    }

    #[test]
    fn binomial_large_values() {
        assert_eq!(binomial(60, 30), 118264581564861424);
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(10, 10), 1);
    }
}
