//! Sharding the RGS solution space for parallel enumeration.
//!
//! The solution space of SPE is (per type group) the set of restricted
//! growth strings of length `n` with at most `k` blocks, in lexicographic
//! order (§4.1.2 of the paper). Because the order is lexicographic, any
//! sorted sequence of *boundary prefixes* cuts the space into disjoint,
//! gap-free, contiguous shards: shard `i` contains exactly the strings
//! `start_i ≤ s < start_{i+1}` (comparing a string against a boundary by
//! its leading `len(boundary)` elements).
//!
//! Shards are sized near-evenly using exact counting: the number of
//! completions of a prefix depends only on how many blocks the prefix uses
//! and how many positions remain ([`rgs_completions`], the same triangular
//! recurrence behind [`crate::stirling2`]); the weight of the empty prefix
//! is [`crate::partitions_at_most`]`(n, k)`, which [`shards`] uses as the
//! total when cutting boundaries.

use crate::rgs::{rgs_block_count, Rgs};
use crate::stirling::partitions_at_most;
use spe_bignum::BigUint;

/// Number of ways to extend a partial RGS into a full one.
///
/// A prefix that already uses `blocks_used` distinct values and has
/// `remaining` positions left (with the global at-most-`k`-blocks bound)
/// can be completed in `C(remaining, blocks_used)` ways, where
///
/// `C(0, m) = 1` and `C(r, m) = m·C(r-1, m) + C(r-1, m+1)` (last term only
/// while `m < k`).
///
/// For the empty prefix this is exactly [`partitions_at_most`]`(n, k)`.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{partitions_at_most, rgs_completions};
///
/// assert_eq!(rgs_completions(0, 5, 3), partitions_at_most(5, 3));
/// assert_eq!(rgs_completions(2, 0, 3).to_u64(), Some(1)); // already complete
/// assert_eq!(rgs_completions(2, 1, 2).to_u64(), Some(2)); // join block 0 or 1
/// ```
pub fn rgs_completions(blocks_used: usize, remaining: usize, k: usize) -> BigUint {
    assert!(blocks_used <= k, "a valid RGS uses at most k blocks");
    if k == 0 {
        // Only the empty string exists.
        return if remaining == 0 {
            BigUint::one()
        } else {
            BigUint::zero()
        };
    }
    let mut row = completions_row(remaining, k);
    row.swap_remove(blocks_used)
}

/// The whole completion row for one `(remaining, k)`: `row[m] = C(remaining,
/// m)` for `m` in `0..=k`. Callers weighing many prefixes of equal length
/// (like [`shards`]) compute this once and index per prefix.
fn completions_row(remaining: usize, k: usize) -> Vec<BigUint> {
    // dp[m] = C(r, m) for the current r, for m in 0..=k.
    let mut dp: Vec<BigUint> = vec![BigUint::one(); k + 1];
    for _r in 1..=remaining {
        let mut next: Vec<BigUint> = Vec::with_capacity(k + 1);
        for m in 0..=k {
            let mut v = dp[m].clone();
            v.mul_word(m as u64);
            if m < k {
                v += &dp[m + 1];
            }
            next.push(v);
        }
        dp = next;
    }
    dp
}

/// Unranks a lexicographic index into `Rgs::new(n, k)`: returns the
/// `index`-th restricted growth string (0-based) of length `n` with at
/// most `k` blocks, in O(n·k) big-integer work.
///
/// This is the digit-by-digit inverse of the [`rgs_completions`] weights:
/// at each position the candidate digits `0..=blocks_used` are weighed by
/// the completions of the extended prefix, and the index is walked down
/// the cumulative weights. Combined with [`crate::Rgs::skip_to`] it turns
/// any *emission-index* range into an RGS boundary pair, which is how
/// index-sharded enumeration resumes mid-space without materializing the
/// prefix.
///
/// # Panics
///
/// Panics if `index >= partitions_at_most(n, k)` (the space size).
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{rgs_unrank, Rgs};
///
/// let serial: Vec<Vec<usize>> = Rgs::new(5, 3).collect();
/// for (i, rgs) in serial.iter().enumerate() {
///     assert_eq!(&rgs_unrank(5, 3, i as u64), rgs);
/// }
/// ```
///
/// Turning an emission-index range into a boundary pair and resuming
/// mid-space — the index-sharding idiom:
///
/// ```
/// use spe_combinatorics::{rgs_unrank, Rgs};
///
/// let serial: Vec<Vec<usize>> = Rgs::new(6, 3).collect();
/// let (lo, hi) = (10u64, 25u64);
/// let mut it = Rgs::new(6, 3);
/// it.skip_to(&rgs_unrank(6, 3, lo));            // land on variant #lo
/// let upper = rgs_unrank(6, 3, hi);             // exclusive boundary
/// let shard: Vec<Vec<usize>> = it.take_while(|s| *s < upper).collect();
/// assert_eq!(shard, serial[10..25].to_vec());
/// ```
pub fn rgs_unrank(n: usize, k: usize, index: u64) -> Vec<usize> {
    let mut idx = BigUint::from(index);
    if n == 0 || k == 0 {
        assert!(n == 0 && idx.is_zero(), "index out of range for empty space");
        return Vec::new();
    }
    // rows[r][m] = C(r, m): completions of a prefix with m blocks used and
    // r positions remaining.
    let mut rows: Vec<Vec<BigUint>> = vec![vec![BigUint::one(); k + 1]];
    for r in 1..n {
        let prev = &rows[r - 1];
        let mut next: Vec<BigUint> = Vec::with_capacity(k + 1);
        for m in 0..=k {
            let mut v = prev[m].clone();
            v.mul_word(m as u64);
            if m < k {
                v += &prev[m + 1];
            }
            next.push(v);
        }
        rows.push(next);
    }
    let mut out = Vec::with_capacity(n);
    let mut blocks_used = 0usize;
    for i in 0..n {
        let row = &rows[n - i - 1];
        let mut placed = false;
        for d in 0..=blocks_used.min(k - 1) {
            let used_after = blocks_used.max(d + 1);
            let weight = &row[used_after];
            match idx.checked_sub(weight) {
                None => {
                    out.push(d);
                    blocks_used = used_after;
                    placed = true;
                    break;
                }
                Some(rest) => idx = rest,
            }
        }
        assert!(placed, "index out of range at position {i}");
    }
    out
}

/// One contiguous slice of the RGS space `Rgs::new(n, k)`.
///
/// The shard covers every string `s` with `start ≤ s < end` in
/// lexicographic order, where boundaries are prefixes compared against the
/// string's leading elements (`end == None` means "to the end of the
/// space"). Produced by [`shards`]; iterate with [`RgsShard::iter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgsShard {
    /// String length.
    pub n: usize,
    /// Maximum number of blocks.
    pub k: usize,
    /// Inclusive lower boundary prefix (empty = start of the space).
    pub start: Vec<usize>,
    /// Exclusive upper boundary prefix; `None` for the final shard.
    pub end: Option<Vec<usize>>,
    /// Exact number of strings in the shard.
    pub size: BigUint,
}

impl RgsShard {
    /// Streams the shard's strings in lexicographic order.
    pub fn iter(&self) -> RgsShardIter {
        let mut inner = Rgs::new(self.n, self.k);
        inner.skip_to(&self.start);
        RgsShardIter {
            inner,
            end: self.end.clone(),
            done: false,
        }
    }

    /// Whether `rgs` falls inside this shard.
    pub fn contains(&self, rgs: &[usize]) -> bool {
        debug_assert_eq!(rgs.len(), self.n);
        if prefix_cmp(rgs, &self.start) == std::cmp::Ordering::Less {
            return false;
        }
        match &self.end {
            None => true,
            Some(end) => prefix_cmp(rgs, end) == std::cmp::Ordering::Less,
        }
    }
}

/// Compares a full string against a boundary prefix: the string's leading
/// `boundary.len()` elements decide.
fn prefix_cmp(rgs: &[usize], boundary: &[usize]) -> std::cmp::Ordering {
    let d = boundary.len().min(rgs.len());
    rgs[..d].cmp(&boundary[..d])
}

/// Iterator over one shard; see [`RgsShard::iter`].
#[derive(Debug, Clone)]
pub struct RgsShardIter {
    inner: Rgs,
    end: Option<Vec<usize>>,
    done: bool,
}

impl Iterator for RgsShardIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let rgs = self.inner.next()?;
        if let Some(end) = &self.end {
            // Lexicographic order: once past the boundary, everything is.
            if prefix_cmp(&rgs, end) != std::cmp::Ordering::Less {
                self.done = true;
                return None;
            }
        }
        Some(rgs)
    }
}

/// Cuts `Rgs::new(n, k)` into at most `want` disjoint contiguous shards of
/// near-even size.
///
/// Boundaries are chosen among prefixes of a fixed depth: the depth grows
/// until the prefix population is comfortably larger than `want` (or the
/// whole string is a prefix). Prefix weights come from [`rgs_completions`]
/// and the total from [`partitions_at_most`], so sizing is exact, not
/// estimated. Fewer than `want` shards are returned when the space is too
/// small to cut further; the shards always cover the space exactly.
///
/// # Examples
///
/// ```
/// use spe_bignum::BigUint;
/// use spe_combinatorics::{partitions_at_most, shards};
///
/// let cut = shards(8, 4, 4);
/// let total: BigUint = cut.iter().map(|s| &s.size).sum();
/// assert_eq!(total, partitions_at_most(8, 4));
/// ```
pub fn shards(n: usize, k: usize, want: usize) -> Vec<RgsShard> {
    let total = partitions_at_most(n as u32, k as u32);
    let single = || {
        vec![RgsShard {
            n,
            k,
            start: Vec::new(),
            end: None,
            size: total.clone(),
        }]
    };
    if want <= 1 || n == 0 || k == 0 || total <= BigUint::from(want as u64) {
        return single();
    }
    // Pick the boundary depth: deep enough that prefixes outnumber the
    // requested shard count several times over, for near-even cuts.
    let oversample = BigUint::from(4u64 * want as u64);
    let mut depth = 1;
    while depth < n && partitions_at_most(depth as u32, k as u32) < oversample {
        depth += 1;
    }
    // Weight every prefix of that depth; all prefixes share one
    // (remaining, k), so the completion row is computed once.
    let row = completions_row(n - depth, k);
    let prefixes: Vec<(Vec<usize>, BigUint)> = Rgs::new(depth, k)
        .map(|p| {
            let w = row[rgs_block_count(&p)].clone();
            (p, w)
        })
        .collect();
    debug_assert_eq!(prefixes.iter().map(|(_, w)| w).sum::<BigUint>(), total);
    // Cut at cumulative-weight targets i·total/want (recomputed only when
    // a cut advances).
    let cut_target = |cut: usize| {
        let mut t = total.clone();
        t.mul_word(cut as u64);
        t.divmod_word(want as u64).0
    };
    let mut out: Vec<RgsShard> = Vec::with_capacity(want);
    let mut cum = BigUint::zero();
    let mut shard_start: Vec<usize> = Vec::new();
    let mut shard_size = BigUint::zero();
    let mut next_cut = 1usize;
    let mut target = cut_target(next_cut);
    for (prefix, weight) in &prefixes {
        if next_cut < want && cum >= target && !shard_size.is_zero() {
            out.push(RgsShard {
                n,
                k,
                start: std::mem::take(&mut shard_start),
                end: Some(prefix.clone()),
                size: std::mem::replace(&mut shard_size, BigUint::zero()),
            });
            shard_start = prefix.clone();
            next_cut += 1;
            target = cut_target(next_cut);
        }
        cum += weight;
        shard_size += weight;
    }
    out.push(RgsShard {
        n,
        k,
        start: shard_start,
        end: None,
        size: shard_size,
    });
    out
}

/// Deals `0..total` into exactly `parts.max(1)` contiguous, in-order,
/// near-even ranges (lengths differ by at most one) that cover the space
/// exactly. Range `i` is `[⌊i·total/parts⌋, ⌊(i+1)·total/parts⌋)`, so
/// the owner of any index — and the full slice of any part — is O(1)
/// arithmetic with nothing materialized.
///
/// This is the pure index-space half of multi-host campaign
/// partitioning (`spe_harness::fleet`): the (file × shard) job space is
/// flattened file-major into `0..total` and each host owns one range;
/// within a job, [`shards`]' exact prefix-weight boundaries and the
/// `skip_to` unranking already make any emission-index sub-range
/// independently enumerable, so no host touches work outside its slice.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::even_ranges;
///
/// let ranges = even_ranges(10, 3);
/// assert_eq!(ranges, vec![0..3, 3..6, 6..10]);
/// // Exact cover: every index in exactly one range.
/// assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
/// ```
pub fn even_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    // u128 intermediates: `i * total` may overflow usize on 32-bit
    // targets (and pathological inputs on 64-bit).
    let cut = |i: usize| ((i as u128 * total as u128) / parts as u128) as usize;
    (0..parts).map(|i| cut(i)..cut(i + 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stirling::bell;

    #[test]
    fn completions_of_empty_prefix_match_partitions_at_most() {
        for n in 0..9usize {
            for k in 1..6usize {
                assert_eq!(
                    rgs_completions(0, n, k),
                    partitions_at_most(n as u32, k as u32),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn completions_sum_over_children() {
        // C(r, m) must equal the sum of completions of all one-step
        // extensions, which is what the recurrence states.
        for k in 1..5usize {
            for m in 0..=k {
                for r in 1..7usize {
                    let direct = rgs_completions(m, r, k);
                    let mut via_children = rgs_completions(m, r - 1, k);
                    via_children.mul_word(m as u64);
                    if m < k {
                        via_children += &rgs_completions(m + 1, r - 1, k);
                    }
                    assert_eq!(direct, via_children, "k={k} m={m} r={r}");
                }
            }
        }
    }

    #[test]
    fn completions_via_enumeration() {
        // Extensions of the prefix [0, 1] within Rgs::new(5, 3).
        let count = Rgs::new(5, 3).filter(|s| s[0] == 0 && s[1] == 1).count();
        assert_eq!(rgs_completions(2, 3, 3).to_u64(), Some(count as u64));
    }

    #[test]
    fn shards_partition_the_space_exactly() {
        for (n, k, want) in [
            (6, 3, 1),
            (6, 3, 2),
            (6, 3, 4),
            (7, 7, 8),
            (5, 2, 3),
            (8, 4, 16),
        ] {
            let cut = shards(n, k, want);
            let serial: Vec<Vec<usize>> = Rgs::new(n, k).collect();
            let merged: Vec<Vec<usize>> = cut.iter().flat_map(|s| s.iter()).collect();
            assert_eq!(merged, serial, "n={n} k={k} want={want}");
            for s in &cut {
                assert_eq!(
                    BigUint::from(s.iter().count()),
                    s.size,
                    "declared size is exact for {s:?}"
                );
            }
        }
    }

    #[test]
    fn shards_are_near_even_for_large_spaces() {
        // Bell(10) = 115975 cut 8 ways: no shard more than ~2x the mean.
        let cut = shards(10, 10, 8);
        assert!(cut.len() >= 4, "got {} shards", cut.len());
        let total = bell(10);
        let mean = total.divmod_word(cut.len() as u64).0;
        for s in &cut {
            let limit = {
                let mut m = mean.clone();
                m.mul_word(2);
                m
            };
            assert!(
                s.size <= limit,
                "shard too large: {:?} vs mean {mean:?}",
                s.size
            );
        }
    }

    #[test]
    fn boundaries_are_strictly_increasing() {
        let cut = shards(9, 5, 6);
        for w in cut.windows(2) {
            assert_eq!(w[0].end.as_ref(), Some(&w[1].start));
        }
        for s in &cut {
            if let Some(end) = &s.end {
                assert!(s.start < *end || s.start.is_empty());
            }
        }
    }

    #[test]
    fn contains_agrees_with_iteration() {
        let cut = shards(6, 3, 4);
        for rgs in Rgs::new(6, 3) {
            let holders: Vec<usize> = cut
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contains(&rgs))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "{rgs:?} held by {holders:?}");
        }
    }

    #[test]
    fn unrank_inverts_lexicographic_enumeration() {
        for (n, k) in [(1, 1), (4, 2), (5, 3), (6, 6), (7, 4)] {
            for (i, rgs) in Rgs::new(n, k).enumerate() {
                assert_eq!(rgs_unrank(n, k, i as u64), rgs, "n={n} k={k} i={i}");
            }
        }
    }

    #[test]
    fn unrank_of_zero_is_the_all_zero_string() {
        assert_eq!(rgs_unrank(6, 3, 0), vec![0; 6]);
        assert_eq!(rgs_unrank(0, 0, 0), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_rejects_out_of_range_indices() {
        let total = partitions_at_most(5, 3).to_u64().expect("small");
        let _ = rgs_unrank(5, 3, total);
    }

    #[test]
    fn degenerate_spaces_yield_one_shard() {
        assert_eq!(shards(0, 3, 4).len(), 1);
        assert_eq!(shards(3, 0, 4).len(), 1);
        assert_eq!(shards(2, 1, 4).len(), 1); // only one string exists
    }
}
