//! Combinatorial engine of skeletal program enumeration (SPE).
//!
//! This crate implements the algorithmic core of *Skeletal Program
//! Enumeration for Rigorous Compiler Testing* (Zhang, Sun, Su; PLDI 2017):
//! the reduction of SPE to constrained set-partition enumeration.
//!
//! * [`Rgs`], [`ExactRgs`] — restricted growth strings, the canonical
//!   encoding of set partitions (§4.1.2);
//! * [`Combinations`] — the paper's `COMBINATIONS(Q, k)`;
//! * [`stirling2`], [`bell`], [`partitions_at_most`] — exact counting
//!   (§4.1.1, Equation 1);
//! * [`FlatInstance`] / [`GeneralInstance`] — scoped SPE instances in the
//!   paper's normal form and in the general allowed-set form (§4.2.1);
//! * [`enumerate_paper`] / [`paper_count`] — Algorithm 1 + `PartitionScope`
//!   reproduced faithfully;
//! * [`enumerate_canonical`] / [`canonical_count`] — duplicate-free
//!   enumeration of valid partitions (one per dependence structure);
//! * [`enumerate_orbits`] / [`orbit_count`] — one representative per
//!   compact-α-renaming class (Definition 2 with scopes);
//! * [`shards`] / [`rgs_completions`] / [`Rgs::skip_to`] — exact
//!   shard-boundary computation over the RGS space for parallel
//!   enumeration and mid-space resumption;
//! * [`ConstrainedRgs`] / [`constrained_count`] — the same counting and
//!   unranking machinery for *constrained* instances, via a memoized DP
//!   over RGS prefixes under SDR pruning (`DESIGN.md §8`);
//! * [`brute`] — exponential oracles validating all of the above.
//!
//! # Quick start
//!
//! ```
//! use spe_combinatorics::{paper_count, canonical_count, orbit_count,
//!                         FlatInstance, FlatScope};
//!
//! // Figure 7 / Example 6 of the paper.
//! let inst = FlatInstance::new(vec![0, 1, 4], 2,
//!     vec![FlatScope { holes: vec![2, 3], vars: 2 }]);
//!
//! assert_eq!(inst.naive_count().to_u64(), Some(128));       // naïve
//! assert_eq!(paper_count(&inst).to_u64(), Some(36));        // the paper
//! assert_eq!(canonical_count(&inst.to_general()).to_u64(), Some(35));
//! assert_eq!(orbit_count(&inst).to_u64(), Some(40));        // strict α
//! ```

#![warn(missing_docs)]

mod canonical;
mod combinations;
mod counting;
mod instance;
mod orbit;
mod paper;
mod rgs;
mod shard;
mod stirling;

pub mod brute;

pub use brute::Fillings;
pub use canonical::{
    assignment_for_rgs, canonical_count, canonical_solutions, canonical_solutions_shard,
    enumerate_canonical, enumerate_canonical_shard, has_sdr, sdr_matching,
};
pub use combinations::{binomial, Combinations};
pub use counting::{constrained_count, ConstrainedRgs};
pub use instance::{FlatInstance, FlatScope, GeneralInstance, HoleId, PoolRef, ScopedSolution};
pub use orbit::{enumerate_orbits, orbit_count, orbit_solutions};
pub use paper::{enumerate_paper, paper_count, paper_solutions};
pub use rgs::{labels_to_rgs, rgs_block_count, rgs_to_blocks, ExactRgs, Rgs};
pub use shard::{even_ranges, rgs_completions, rgs_unrank, shards, RgsShard, RgsShardIter};
pub use stirling::{
    bell, partitions_at_most, partitions_at_most_estimate, stirling2, stirling2_clamped,
};
