//! Restricted growth strings (RGS) and set-partition generation.
//!
//! A restricted growth string `a_1 a_2 … a_n` satisfies `a_1 = 0` and
//! `a_{i+1} ≤ 1 + max(a_1, …, a_i)` (§4.1.2 of the paper). RGSs of length
//! `n` with values `< k` are in bijection with partitions of an `n`-element
//! set into at most `k` unlabeled blocks, and are the canonical encoding of
//! a skeleton variant.

/// Iterator over all restricted growth strings of length `n` with at most
/// `k` distinct values, in lexicographic order.
///
/// Each item is the RGS as a `Vec<usize>`; element `i` names the block of
/// set element `i`.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::Rgs;
///
/// // Partitions of {0,1,2} into at most 2 blocks.
/// let all: Vec<_> = Rgs::new(3, 2).collect();
/// assert_eq!(all, vec![
///     vec![0, 0, 0],
///     vec![0, 0, 1],
///     vec![0, 1, 0],
///     vec![0, 1, 1],
/// ]);
/// ```
#[derive(Debug, Clone)]
pub struct Rgs {
    a: Vec<usize>,
    /// `prefix_max[i]` = max of `a[0..=i]`.
    prefix_max: Vec<usize>,
    k: usize,
    started: bool,
    done: bool,
}

impl Rgs {
    /// Creates the iterator. `n == 0` yields exactly one empty string.
    /// `k == 0` with `n > 0` yields nothing (no block to put elements in).
    pub fn new(n: usize, k: usize) -> Self {
        let done = n > 0 && k == 0;
        Rgs {
            a: vec![0; n],
            prefix_max: vec![0; n],
            k,
            started: false,
            done,
        }
    }

    /// Repositions the iterator at the lexicographically smallest string
    /// extending `prefix` (the prefix padded with zeros); that string is
    /// the next item yielded. Passing an empty prefix rewinds to the start
    /// of the space. This is the shard-resumption entry point: a worker
    /// restarts mid-space in O(n) without re-enumerating earlier strings.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is longer than the string length, is not a valid
    /// restricted growth prefix, or names a block `≥ k`.
    ///
    /// ```
    /// use spe_combinatorics::Rgs;
    ///
    /// let mut it = Rgs::new(3, 3);
    /// it.skip_to(&[0, 1]);
    /// assert_eq!(it.next(), Some(vec![0, 1, 0]));
    /// assert_eq!(it.next(), Some(vec![0, 1, 1]));
    /// ```
    pub fn skip_to(&mut self, prefix: &[usize]) {
        let n = self.a.len();
        assert!(prefix.len() <= n, "prefix longer than the string length");
        let mut max = 0usize;
        for (i, &v) in prefix.iter().enumerate() {
            if i == 0 {
                assert_eq!(v, 0, "a restricted growth string starts with 0");
            } else {
                assert!(v <= max + 1, "growth condition violated at position {i}");
            }
            assert!(v < self.k, "prefix uses block {v} but k = {}", self.k);
            max = max.max(v);
        }
        self.a[..prefix.len()].copy_from_slice(prefix);
        for v in &mut self.a[prefix.len()..] {
            *v = 0;
        }
        let mut running = 0usize;
        for i in 0..n {
            running = running.max(self.a[i]);
            self.prefix_max[i] = running;
        }
        self.started = false;
        self.done = n > 0 && self.k == 0;
    }

    fn advance(&mut self) -> bool {
        let n = self.a.len();
        if n == 0 {
            return false;
        }
        // Find the rightmost position (never position 0) that can be
        // incremented while preserving the growth condition and the block
        // bound `k`.
        let mut i = n;
        while i > 1 {
            i -= 1;
            let prev_max = self.prefix_max[i - 1];
            if self.a[i] <= prev_max && self.a[i] + 1 < self.k {
                self.a[i] += 1;
                self.prefix_max[i] = prev_max.max(self.a[i]);
                for j in i + 1..n {
                    self.a[j] = 0;
                    self.prefix_max[j] = self.prefix_max[j - 1];
                }
                return true;
            }
        }
        false
    }
}

impl Iterator for Rgs {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.a.clone());
        }
        if self.advance() {
            Some(self.a.clone())
        } else {
            self.done = true;
            None
        }
    }
}

/// Number of blocks used by an RGS (0 for the empty string).
///
/// ```
/// assert_eq!(spe_combinatorics::rgs_block_count(&[0, 1, 0, 2]), 3);
/// assert_eq!(spe_combinatorics::rgs_block_count(&[]), 0);
/// ```
pub fn rgs_block_count(rgs: &[usize]) -> usize {
    rgs.iter().copied().max().map_or(0, |m| m + 1)
}

/// Converts an RGS into explicit blocks of element indices.
///
/// ```
/// let blocks = spe_combinatorics::rgs_to_blocks(&[0, 1, 0]);
/// assert_eq!(blocks, vec![vec![0, 2], vec![1]]);
/// ```
pub fn rgs_to_blocks(rgs: &[usize]) -> Vec<Vec<usize>> {
    let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); rgs_block_count(rgs)];
    for (i, &b) in rgs.iter().enumerate() {
        blocks[b].push(i);
    }
    blocks
}

/// Canonicalizes an arbitrary labeling (e.g. a filling of holes with
/// variable indices) into its RGS by renaming labels in order of first
/// occurrence.
///
/// ```
/// // The filling ⟨b, a, b, b, b, a⟩ of Example 5 has RGS 0 1 0 0 0 1.
/// assert_eq!(
///     spe_combinatorics::labels_to_rgs(&[1, 0, 1, 1, 1, 0]),
///     vec![0, 1, 0, 0, 0, 1]
/// );
/// ```
pub fn labels_to_rgs(labels: &[usize]) -> Vec<usize> {
    let mut map: Vec<Option<usize>> = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::with_capacity(labels.len());
    for &l in labels {
        if l >= map.len() {
            map.resize(l + 1, None);
        }
        let id = *map[l].get_or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        out.push(id);
    }
    out
}

/// Iterator over partitions of `{0..n}` into **exactly** `j` non-empty
/// blocks — the paper's `PARTITIONS'(Q, j)`.
///
/// Yields RGS encodings. `j > n` yields nothing; callers wanting the
/// paper's clamping convention (`{n k} = {n n}` for `k > n`) should clamp
/// `j` first.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::ExactRgs;
/// // {3 2} = 3 partitions.
/// assert_eq!(ExactRgs::new(3, 2).count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ExactRgs {
    inner: Rgs,
    j: usize,
}

impl ExactRgs {
    /// Creates the iterator over exactly-`j`-block partitions of `n`
    /// elements.
    pub fn new(n: usize, j: usize) -> Self {
        // Delegate to the at-most iterator and filter; instances in SPE
        // skeletons are small (the 10K-variant threshold bounds them).
        let inner = if j > n {
            // Nothing will match; an empty iterator via k = 0 on n > 0,
            // except n == 0, j == 0 which must yield the empty partition.
            Rgs::new(n.max(1), 0)
        } else {
            Rgs::new(n, j)
        };
        ExactRgs { inner, j }
    }

    /// Repositions at the smallest exactly-`j`-block string extending
    /// `prefix`; see [`Rgs::skip_to`] for the prefix contract. Strings
    /// before the boundary are skipped without being yielded.
    ///
    /// ```
    /// use spe_combinatorics::ExactRgs;
    ///
    /// let mut it = ExactRgs::new(4, 2);
    /// it.skip_to(&[0, 1]);
    /// assert_eq!(it.next(), Some(vec![0, 1, 0, 0]));
    /// ```
    pub fn skip_to(&mut self, prefix: &[usize]) {
        self.inner.skip_to(prefix);
    }
}

impl Iterator for ExactRgs {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        self.inner
            .by_ref()
            .find(|rgs| rgs_block_count(rgs) == self.j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgs_counts_are_bell_numbers() {
        // Bell numbers 1, 1, 2, 5, 15, 52, 203 for n = 0..=6.
        let bell = [1usize, 1, 2, 5, 15, 52, 203];
        for (n, &expect) in bell.iter().enumerate() {
            assert_eq!(Rgs::new(n, n.max(1)).count(), expect, "n = {n}");
        }
    }

    #[test]
    fn rgs_respects_block_bound() {
        for rgs in Rgs::new(5, 3) {
            assert!(rgs_block_count(&rgs) <= 3);
        }
        // Sum of Stirling {5 1} + {5 2} + {5 3} = 1 + 15 + 25 = 41.
        assert_eq!(Rgs::new(5, 3).count(), 41);
    }

    #[test]
    fn rgs_lexicographic_order() {
        let all: Vec<_> = Rgs::new(4, 4).collect();
        for w in all.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn rgs_growth_condition_holds() {
        for rgs in Rgs::new(6, 4) {
            assert_eq!(rgs[0], 0);
            let mut max = 0;
            for &v in &rgs {
                assert!(v <= max + 1);
                max = max.max(v);
            }
        }
    }

    #[test]
    fn rgs_zero_elements() {
        let all: Vec<_> = Rgs::new(0, 3).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn rgs_zero_blocks() {
        assert_eq!(Rgs::new(3, 0).count(), 0);
        assert_eq!(Rgs::new(0, 0).count(), 1);
    }

    #[test]
    fn exact_rgs_matches_stirling() {
        // {4 2} = 7, {4 3} = 6, {4 4} = 1.
        assert_eq!(ExactRgs::new(4, 2).count(), 7);
        assert_eq!(ExactRgs::new(4, 3).count(), 6);
        assert_eq!(ExactRgs::new(4, 4).count(), 1);
        assert_eq!(ExactRgs::new(4, 5).count(), 0);
    }

    #[test]
    fn exact_rgs_empty_set() {
        assert_eq!(ExactRgs::new(0, 0).count(), 1);
        assert_eq!(ExactRgs::new(0, 1).count(), 0);
    }

    #[test]
    fn blocks_roundtrip() {
        for rgs in Rgs::new(5, 5) {
            let blocks = rgs_to_blocks(&rgs);
            let mut rebuilt = vec![usize::MAX; rgs.len()];
            for (b, members) in blocks.iter().enumerate() {
                for &m in members {
                    rebuilt[m] = b;
                }
            }
            assert_eq!(rebuilt, rgs);
        }
    }

    #[test]
    fn labels_to_rgs_is_canonical() {
        assert_eq!(labels_to_rgs(&[7, 7, 3, 7, 3]), vec![0, 0, 1, 0, 1]);
        assert_eq!(labels_to_rgs(&[]), Vec::<usize>::new());
        // Example 5 of the paper: ⟨a,b,b,b,a,b⟩ has string 011101.
        assert_eq!(labels_to_rgs(&[0, 1, 1, 1, 0, 1]), vec![0, 1, 1, 1, 0, 1]);
    }

    #[test]
    fn paper_example_5_strings() {
        // sP = ⟨a, b, a, a, a, b⟩ -> "010001".
        assert_eq!(labels_to_rgs(&[0, 1, 0, 0, 0, 1]), vec![0, 1, 0, 0, 0, 1]);
    }
}
