//! Problem instances for scoped skeletal program enumeration.
//!
//! The paper's §4.2 normal form arranges a function's holes as
//! `⟨□g, …, □g, □1, …, □1, …, □t, …, □t⟩`: global holes first, then the
//! holes of each local scope. [`FlatInstance`] captures exactly that shape;
//! [`GeneralInstance`] captures the fully general "each hole has an allowed
//! variable set" formulation of §4.2.1 (which also covers nested scopes and
//! type constraints).

use spe_bignum::BigUint;

/// Identifier of a hole: its index in the skeleton's hole list.
pub type HoleId = usize;

/// The variable pool a partition block draws its representative from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolRef {
    /// The function-global pool `v^g`.
    Global,
    /// The pool `v^l` of local scope `l` (index into
    /// [`FlatInstance::scopes`]).
    Local(usize),
}

/// One local scope of a [`FlatInstance`]: the holes appearing in it and the
/// number of variables it declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatScope {
    /// Holes whose allowed set is `v^g ∪ v^l`.
    pub holes: Vec<HoleId>,
    /// `|v^l|` — number of variables declared by this scope.
    pub vars: usize,
}

/// A scoped SPE instance in the paper's normal form: `global_vars` global
/// variables usable by every hole, plus flat local scopes whose holes may
/// additionally use that scope's own variables.
///
/// # Examples
///
/// Figure 7 of the paper: holes 1, 2, 5 are global, holes 3, 4 live in a
/// scope declaring two variables, and there are two globals:
///
/// ```
/// use spe_combinatorics::{FlatInstance, FlatScope};
///
/// let fig7 = FlatInstance::new(vec![0, 1, 4], 2, vec![FlatScope { holes: vec![2, 3], vars: 2 }]);
/// assert_eq!(fig7.naive_count().to_u64(), Some(128)); // 2^3 · 4^2
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatInstance {
    global_holes: Vec<HoleId>,
    global_vars: usize,
    scopes: Vec<FlatScope>,
}

impl FlatInstance {
    /// Builds a normalized instance.
    ///
    /// Normalization mirrors the assumptions of Algorithm 1: scopes
    /// declaring no variables contribute their holes to the global hole
    /// list (their holes can only be filled with globals anyway), and
    /// scopes without holes are dropped.
    pub fn new(
        global_holes: Vec<HoleId>,
        global_vars: usize,
        scopes: Vec<FlatScope>,
    ) -> FlatInstance {
        let mut g = global_holes;
        let mut kept = Vec::new();
        for s in scopes {
            if s.holes.is_empty() {
                continue;
            }
            if s.vars == 0 {
                g.extend(s.holes);
            } else {
                kept.push(s);
            }
        }
        FlatInstance {
            global_holes: g,
            global_vars,
            scopes: kept,
        }
    }

    /// An instance with a single (global) scope: `n` holes, `k` variables.
    ///
    /// ```
    /// use spe_combinatorics::FlatInstance;
    /// let i = FlatInstance::unscoped(6, 2);
    /// assert_eq!(i.naive_count().to_u64(), Some(64));
    /// ```
    pub fn unscoped(n: usize, k: usize) -> FlatInstance {
        FlatInstance::new((0..n).collect(), k, Vec::new())
    }

    /// Holes fillable only by global variables.
    pub fn global_holes(&self) -> &[HoleId] {
        &self.global_holes
    }

    /// Number of global variables `|v^g|`.
    pub fn global_vars(&self) -> usize {
        self.global_vars
    }

    /// The (normalized) local scopes.
    pub fn scopes(&self) -> &[FlatScope] {
        &self.scopes
    }

    /// Total number of holes.
    pub fn num_holes(&self) -> usize {
        self.global_holes.len() + self.scopes.iter().map(|s| s.holes.len()).sum::<usize>()
    }

    /// Returns `true` when some hole has an empty allowed variable set, in
    /// which case the instance has no solutions at all.
    pub fn is_unsatisfiable(&self) -> bool {
        self.global_vars == 0 && !self.global_holes.is_empty()
    }

    /// All holes in normal-form order: globals first, then each scope.
    pub fn normal_form(&self) -> Vec<HoleId> {
        let mut v = self.global_holes.clone();
        for s in &self.scopes {
            v.extend_from_slice(&s.holes);
        }
        v
    }

    /// The naive enumeration-set size `∏_i |v_i|` (§3.1).
    ///
    /// ```
    /// use spe_combinatorics::FlatInstance;
    /// // Figure 5: 6 holes, 2 globals -> 64.
    /// assert_eq!(FlatInstance::unscoped(6, 2).naive_count().to_u64(), Some(64));
    /// ```
    pub fn naive_count(&self) -> BigUint {
        let mut acc = BigUint::one();
        for _ in &self.global_holes {
            acc.mul_word(self.global_vars as u64);
        }
        for s in &self.scopes {
            for _ in &s.holes {
                acc.mul_word((self.global_vars + s.vars) as u64);
            }
        }
        acc
    }

    /// Converts to the general per-hole-allowed-set form. Global variables
    /// receive ids `0..global_vars`; each scope's variables follow in
    /// order.
    pub fn to_general(&self) -> GeneralInstance {
        let total_vars: usize =
            self.global_vars + self.scopes.iter().map(|s| s.vars).sum::<usize>();
        let num_holes = self.num_holes();
        let globals: Vec<usize> = (0..self.global_vars).collect();
        let mut allowed: Vec<Vec<usize>> = vec![Vec::new(); num_holes];
        for &h in &self.global_holes {
            allowed[h] = globals.clone();
        }
        let mut offset = self.global_vars;
        for s in &self.scopes {
            let mut set = globals.clone();
            set.extend(offset..offset + s.vars);
            for &h in &s.holes {
                allowed[h] = set.clone();
            }
            offset += s.vars;
        }
        GeneralInstance {
            allowed,
            num_vars: total_vars,
        }
    }

    /// The pool each variable id of [`Self::to_general`] belongs to.
    pub fn pool_of_var(&self, var: usize) -> PoolRef {
        if var < self.global_vars {
            return PoolRef::Global;
        }
        let mut offset = self.global_vars;
        for (i, s) in self.scopes.iter().enumerate() {
            if var < offset + s.vars {
                return PoolRef::Local(i);
            }
            offset += s.vars;
        }
        panic!("variable id {var} out of range");
    }
}

/// A partition of the holes together with the pool each block draws its
/// variable from. This is the output form of the scoped enumerators: a
/// canonical representative of a family of α-equivalent programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopedSolution {
    /// Blocks of hole ids; holes in one block are filled with the same
    /// variable.
    pub blocks: Vec<Vec<HoleId>>,
    /// Pool of the variable filling each block (parallel to `blocks`).
    pub pools: Vec<PoolRef>,
}

impl ScopedSolution {
    /// The RGS encoding of the underlying set partition over `n` holes
    /// (pools ignored). Blocks are renamed in order of first hole
    /// occurrence, making the encoding canonical.
    ///
    /// # Panics
    ///
    /// Panics if a hole id is `>= n` or a hole is missing from the blocks.
    pub fn rgs(&self, n: usize) -> Vec<usize> {
        let mut label = vec![usize::MAX; n];
        for (b, members) in self.blocks.iter().enumerate() {
            for &m in members {
                label[m] = b;
            }
        }
        assert!(
            label.iter().all(|&l| l != usize::MAX),
            "solution does not cover every hole"
        );
        crate::labels_to_rgs(&label)
    }

    /// A canonical fingerprint including the pool assignment: the RGS plus
    /// the pool of each hole's block. Two solutions with equal fingerprints
    /// realize compact-α-equivalent programs.
    pub fn fingerprint(&self, n: usize) -> (Vec<usize>, Vec<PoolRef>) {
        let mut pool = vec![PoolRef::Global; n];
        for (b, members) in self.blocks.iter().enumerate() {
            for &m in members {
                pool[m] = self.pools[b];
            }
        }
        (self.rgs(n), pool)
    }
}

/// The general SPE partition instance of §4.2.1: each hole has an explicit
/// allowed-variable set. This form also expresses nested scopes and
/// type-compatibility constraints.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::GeneralInstance;
///
/// let inst = GeneralInstance {
///     allowed: vec![vec![0, 1], vec![0, 1], vec![0, 1, 2, 3]],
///     num_vars: 4,
/// };
/// assert_eq!(inst.naive_count().to_u64(), Some(16));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralInstance {
    /// `allowed[i]` lists the variable ids usable in hole `i` (sorted,
    /// deduplicated).
    pub allowed: Vec<Vec<usize>>,
    /// Total number of distinct variables.
    pub num_vars: usize,
}

impl GeneralInstance {
    /// Number of holes.
    pub fn num_holes(&self) -> usize {
        self.allowed.len()
    }

    /// The naive enumeration-set size `∏_i |v_i|`.
    pub fn naive_count(&self) -> BigUint {
        let mut acc = BigUint::one();
        for a in &self.allowed {
            acc.mul_word(a.len() as u64);
        }
        acc
    }

    /// Bitmask of allowed variables for hole `i`.
    ///
    /// # Panics
    ///
    /// Panics if the instance has more than 128 variables; SPE skeletons
    /// within the paper's 10K-variant budget are far smaller.
    pub fn mask(&self, i: usize) -> u128 {
        let mut m = 0u128;
        for &v in &self.allowed[i] {
            assert!(v < 128, "GeneralInstance supports at most 128 variables");
            m |= 1 << v;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7() -> FlatInstance {
        FlatInstance::new(
            vec![0, 1, 4],
            2,
            vec![FlatScope {
                holes: vec![2, 3],
                vars: 2,
            }],
        )
    }

    #[test]
    fn naive_count_matches_paper_fig7() {
        assert_eq!(fig7().naive_count().to_u64(), Some(128));
    }

    #[test]
    fn naive_count_matches_paper_fig6() {
        // Figure 6: 5 global-position holes with 2 candidates, 5 scoped
        // holes with 4 candidates: 2^5 · 4^5 = 32768.
        let inst = FlatInstance::new(
            vec![0, 1, 2, 8, 9],
            2,
            vec![FlatScope {
                holes: vec![3, 4, 5, 6, 7],
                vars: 2,
            }],
        );
        assert_eq!(inst.naive_count().to_u64(), Some(32768));
    }

    #[test]
    fn normalization_merges_varless_scopes() {
        let inst = FlatInstance::new(
            vec![0],
            2,
            vec![
                FlatScope {
                    holes: vec![1],
                    vars: 0,
                },
                FlatScope {
                    holes: vec![],
                    vars: 3,
                },
                FlatScope {
                    holes: vec![2],
                    vars: 1,
                },
            ],
        );
        assert_eq!(inst.global_holes(), &[0, 1]);
        assert_eq!(inst.scopes().len(), 1);
        assert_eq!(inst.num_holes(), 3);
    }

    #[test]
    fn unsatisfiable_detection() {
        assert!(FlatInstance::unscoped(3, 0).is_unsatisfiable());
        assert!(!FlatInstance::unscoped(3, 1).is_unsatisfiable());
        assert!(!FlatInstance::unscoped(0, 0).is_unsatisfiable());
    }

    #[test]
    fn normal_form_order() {
        assert_eq!(fig7().normal_form(), vec![0, 1, 4, 2, 3]);
    }

    #[test]
    fn general_conversion() {
        let g = fig7().to_general();
        assert_eq!(g.num_vars, 4);
        assert_eq!(g.allowed[0], vec![0, 1]);
        assert_eq!(g.allowed[2], vec![0, 1, 2, 3]);
        assert_eq!(g.naive_count(), fig7().naive_count());
    }

    #[test]
    fn pool_of_var_mapping() {
        let inst = fig7();
        assert_eq!(inst.pool_of_var(0), PoolRef::Global);
        assert_eq!(inst.pool_of_var(1), PoolRef::Global);
        assert_eq!(inst.pool_of_var(2), PoolRef::Local(0));
        assert_eq!(inst.pool_of_var(3), PoolRef::Local(0));
    }

    #[test]
    fn solution_rgs_is_canonical() {
        let sol = ScopedSolution {
            blocks: vec![vec![1, 3], vec![0, 2]],
            pools: vec![PoolRef::Global, PoolRef::Global],
        };
        assert_eq!(sol.rgs(4), vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn solution_rgs_requires_coverage() {
        let sol = ScopedSolution {
            blocks: vec![vec![0]],
            pools: vec![PoolRef::Global],
        };
        let _ = sol.rgs(2);
    }
}
