//! The paper's enumeration algorithm (Algorithm 1 + Procedure
//! `PartitionScope`), reproduced faithfully, together with its closed-form
//! counting counterpart.
//!
//! The algorithm enumerates scoped set partitions in two phases:
//!
//! 1. **All-global phase** (Algorithm 1 line 3): every hole is treated as
//!    fillable by a global variable, producing `PARTITIONS(H, |v^g|)` —
//!    all partitions of all holes into at most `|v^g|` blocks.
//! 2. **Promotion phase** (`PartitionScope`): for every scope, every
//!    proper subset of its local holes is *promoted* to the global pool
//!    (`COMBINATIONS`, line 3); the remaining local holes are partitioned
//!    into `j ∈ [1, |v^l|]` non-empty blocks (`PARTITIONS'`, line 8); and
//!    the promoted+global holes are finally partitioned into exactly
//!    `|v^g|` non-empty blocks (line 14, with the paper's `{n k} = {n n}`
//!    clamping convention for small sets).
//!
//! Reproduction note (see `DESIGN.md` §2): this decomposition is exactly
//! the paper's, including its arithmetic on Example 6 (16 + 7 + 7 + 6 =
//! 36). It can emit two representatives of the same underlying partition
//! when distinct promotion choices lead to singleton local blocks, and it
//! skips compact-α-classes whose partitions already appeared with a
//! different pool assignment; the `canonical` and `orbit` modules provide
//! the two mathematically tight alternatives.

use crate::instance::{FlatInstance, PoolRef, ScopedSolution};
use crate::{partitions_at_most, rgs_to_blocks, stirling2_clamped, Combinations, ExactRgs, Rgs};
use spe_bignum::BigUint;
use std::ops::ControlFlow;

/// Enumerates the paper's solution set for `inst`, invoking `visit` for
/// each scoped solution. Returning [`ControlFlow::Break`] stops the
/// enumeration early (used to honor variant budgets).
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{enumerate_paper, FlatInstance, FlatScope};
/// use std::ops::ControlFlow;
///
/// // Example 6 of the paper: 36 solutions.
/// let inst = FlatInstance::new(vec![0, 1, 4], 2, vec![FlatScope { holes: vec![2, 3], vars: 2 }]);
/// let mut n = 0;
/// enumerate_paper(&inst, &mut |_s| { n += 1; ControlFlow::Continue(()) });
/// assert_eq!(n, 36);
/// ```
pub fn enumerate_paper<F>(inst: &FlatInstance, visit: &mut F) -> ControlFlow<()>
where
    F: FnMut(&ScopedSolution) -> ControlFlow<()>,
{
    if inst.is_unsatisfiable() {
        return ControlFlow::Continue(());
    }
    let order = inst.normal_form();
    let kg = inst.global_vars();

    // Phase 1: S'_f — all holes, at most |v^g| blocks, all pools global.
    if kg > 0 || order.is_empty() {
        for rgs in Rgs::new(order.len(), kg.max(usize::from(order.is_empty()))) {
            let blocks: Vec<Vec<usize>> = rgs_to_blocks(&rgs)
                .into_iter()
                .map(|b| b.iter().map(|&i| order[i]).collect())
                .collect();
            let pools = vec![PoolRef::Global; blocks.len()];
            visit(&ScopedSolution { blocks, pools })?;
        }
    }

    // Phase 2: PartitionScope over the local scopes.
    if inst.scopes().is_empty() {
        return ControlFlow::Continue(());
    }
    let mut promoted: Vec<usize> = Vec::new();
    let mut locals: Vec<(usize, Vec<Vec<usize>>)> = Vec::new();
    partition_scope(inst, 0, &mut promoted, &mut locals, visit)
}

fn partition_scope<F>(
    inst: &FlatInstance,
    scope_idx: usize,
    promoted: &mut Vec<usize>,
    locals: &mut Vec<(usize, Vec<Vec<usize>>)>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&ScopedSolution) -> ControlFlow<()>,
{
    if scope_idx == inst.scopes().len() {
        return emit_with_globals(inst, promoted, locals, visit);
    }
    let scope = &inst.scopes()[scope_idx];
    let u = scope.holes.len();
    debug_assert!(u >= 1, "normalization removes empty scopes");
    // Paper line 2: k ∈ [0, u-1] — promote every *proper* subset.
    for p in 0..u {
        for combo in Combinations::new(u, p) {
            let chosen: Vec<usize> = combo.iter().map(|&i| scope.holes[i]).collect();
            let rest: Vec<usize> = (0..u)
                .filter(|i| !combo.contains(i))
                .map(|i| scope.holes[i])
                .collect();
            promoted.extend_from_slice(&chosen);
            // Paper lines 7-8: j ∈ [1, v], PARTITIONS'(rest, j).
            let max_j = scope.vars.min(rest.len());
            for j in 1..=max_j {
                for lrgs in ExactRgs::new(rest.len(), j) {
                    let blocks: Vec<Vec<usize>> = rgs_to_blocks(&lrgs)
                        .into_iter()
                        .map(|b| b.iter().map(|&i| rest[i]).collect())
                        .collect();
                    locals.push((scope_idx, blocks));
                    partition_scope(inst, scope_idx + 1, promoted, locals, visit)?;
                    locals.pop();
                }
            }
            promoted.truncate(promoted.len() - chosen.len());
        }
    }
    ControlFlow::Continue(())
}

fn emit_with_globals<F>(
    inst: &FlatInstance,
    promoted: &[usize],
    locals: &[(usize, Vec<Vec<usize>>)],
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&ScopedSolution) -> ControlFlow<()>,
{
    let mut g: Vec<usize> = inst.global_holes().to_vec();
    g.extend_from_slice(promoted);
    // Paper line 14: PARTITIONS'(G, |v^g|) with the clamping convention.
    let j = inst.global_vars().min(g.len());
    if g.is_empty() {
        // One empty global partition.
        return emit_solution(&[], locals, visit);
    }
    if j == 0 {
        return ControlFlow::Continue(());
    }
    for grgs in ExactRgs::new(g.len(), j) {
        let blocks: Vec<Vec<usize>> = rgs_to_blocks(&grgs)
            .into_iter()
            .map(|b| b.iter().map(|&i| g[i]).collect())
            .collect();
        emit_solution(&blocks, locals, visit)?;
    }
    ControlFlow::Continue(())
}

fn emit_solution<F>(
    global_blocks: &[Vec<usize>],
    locals: &[(usize, Vec<Vec<usize>>)],
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&ScopedSolution) -> ControlFlow<()>,
{
    let mut blocks: Vec<Vec<usize>> = global_blocks.to_vec();
    let mut pools: Vec<PoolRef> = vec![PoolRef::Global; blocks.len()];
    for (scope_idx, lblocks) in locals {
        for b in lblocks {
            blocks.push(b.clone());
            pools.push(PoolRef::Local(*scope_idx));
        }
    }
    visit(&ScopedSolution { blocks, pools })
}

/// Collects the paper enumeration into a vector, stopping after `limit`
/// solutions. Returns the solutions and whether the enumeration was
/// truncated.
///
/// ```
/// use spe_combinatorics::{paper_solutions, FlatInstance};
///
/// let (sols, truncated) = paper_solutions(&FlatInstance::unscoped(6, 2), 1000);
/// assert_eq!(sols.len(), 32); // {6 1} + {6 2}
/// assert!(!truncated);
/// ```
pub fn paper_solutions(inst: &FlatInstance, limit: usize) -> (Vec<ScopedSolution>, bool) {
    let mut out = Vec::new();
    let flow = enumerate_paper(inst, &mut |s| {
        if out.len() >= limit {
            return ControlFlow::Break(());
        }
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    (out, flow.is_break())
}

/// Closed-form size of the paper enumeration for `inst` — the counting
/// counterpart of [`enumerate_paper`], exact in `BigUint` arithmetic.
///
/// The count is
/// `PARTITIONS(n, k_g) + Σ_m poly[m] · {g + m, k_g}↓` where `poly` is the
/// convolution over scopes of `C(u_s, p) · PARTITIONS(u_s - p, k_s)`
/// (`p < u_s`) and `↓` denotes the paper's clamping convention.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{paper_count, FlatInstance, FlatScope};
///
/// let fig7 = FlatInstance::new(vec![0, 1, 4], 2, vec![FlatScope { holes: vec![2, 3], vars: 2 }]);
/// assert_eq!(paper_count(&fig7).to_u64(), Some(36)); // Example 6
/// ```
pub fn paper_count(inst: &FlatInstance) -> BigUint {
    if inst.is_unsatisfiable() {
        return BigUint::zero();
    }
    let n = inst.num_holes();
    let kg = inst.global_vars();
    let mut total = if kg > 0 || n == 0 {
        partitions_at_most(n as u32, kg as u32)
    } else {
        BigUint::zero()
    };
    if inst.scopes().is_empty() {
        return total;
    }
    // poly[m] = Σ over per-scope promotions summing to m of the product of
    // per-scope (choose × local-partition) counts.
    let mut poly: Vec<BigUint> = vec![BigUint::one()];
    for s in inst.scopes() {
        let u = s.holes.len();
        let mut contrib: Vec<BigUint> = Vec::with_capacity(u);
        for p in 0..u {
            let choose = BigUint::from(crate::binomial(u as u64, p as u64));
            let local_ways = partitions_at_most((u - p) as u32, s.vars as u32);
            contrib.push(&choose * &local_ways);
        }
        let mut next: Vec<BigUint> = vec![BigUint::zero(); poly.len() + contrib.len() - 1];
        for (m, a) in poly.iter().enumerate() {
            for (p, b) in contrib.iter().enumerate() {
                next[m + p] += &(a * b);
            }
        }
        poly = next;
    }
    let g = inst.global_holes().len();
    for (m, coeff) in poly.iter().enumerate() {
        if coeff.is_zero() {
            continue;
        }
        let gm = (g + m) as u32;
        let globals_ways = if gm == 0 {
            BigUint::one()
        } else if kg == 0 {
            BigUint::zero()
        } else {
            stirling2_clamped(gm, kg as u32)
        };
        total += &(coeff * &globals_ways);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::FlatScope;

    fn fig7() -> FlatInstance {
        FlatInstance::new(
            vec![0, 1, 4],
            2,
            vec![FlatScope {
                holes: vec![2, 3],
                vars: 2,
            }],
        )
    }

    #[test]
    fn example6_count_is_36() {
        assert_eq!(paper_count(&fig7()).to_u64(), Some(36));
    }

    #[test]
    fn example6_enumeration_matches_count() {
        let (sols, truncated) = paper_solutions(&fig7(), 10_000);
        assert!(!truncated);
        assert_eq!(sols.len(), 36);
    }

    #[test]
    fn example6_phase_breakdown() {
        // The paper's breakdown: 16 all-global + 7 promote-3 + 7 promote-4
        // + 6 promote-neither.
        let (sols, _) = paper_solutions(&fig7(), 10_000);
        let all_global = sols
            .iter()
            .filter(|s| s.pools.iter().all(|p| *p == PoolRef::Global))
            .count();
        assert_eq!(all_global, 16);
        let with_local = sols.len() - all_global;
        assert_eq!(with_local, 20);
    }

    #[test]
    fn unscoped_counts_are_bell_sums() {
        // No scopes: the solution set is PARTITIONS(n, k).
        for (n, k, expect) in [(6usize, 2usize, 32u64), (5, 5, 52), (4, 2, 8), (1, 3, 1)] {
            let inst = FlatInstance::unscoped(n, k);
            assert_eq!(paper_count(&inst).to_u64(), Some(expect), "n={n} k={k}");
            let (sols, _) = paper_solutions(&inst, 100_000);
            assert_eq!(sols.len() as u64, expect, "enumeration n={n} k={k}");
        }
    }

    #[test]
    fn enumeration_matches_count_on_varied_instances() {
        let cases = vec![
            FlatInstance::new(
                vec![0],
                1,
                vec![FlatScope {
                    holes: vec![1, 2],
                    vars: 1,
                }],
            ),
            FlatInstance::new(
                vec![],
                2,
                vec![FlatScope {
                    holes: vec![0, 1, 2],
                    vars: 2,
                }],
            ),
            FlatInstance::new(
                vec![0, 1],
                2,
                vec![
                    FlatScope {
                        holes: vec![2, 3],
                        vars: 1,
                    },
                    FlatScope {
                        holes: vec![4],
                        vars: 2,
                    },
                ],
            ),
            FlatInstance::new(
                vec![0, 1, 2, 3],
                3,
                vec![FlatScope {
                    holes: vec![4, 5],
                    vars: 2,
                }],
            ),
        ];
        for inst in cases {
            let (sols, truncated) = paper_solutions(&inst, 1_000_000);
            assert!(!truncated);
            assert_eq!(
                BigUint::from(sols.len()),
                paper_count(&inst),
                "instance {inst:?}"
            );
        }
    }

    #[test]
    fn budget_truncation() {
        let (sols, truncated) = paper_solutions(&FlatInstance::unscoped(10, 10), 5);
        assert_eq!(sols.len(), 5);
        assert!(truncated);
    }

    #[test]
    fn unsatisfiable_instance_yields_nothing() {
        let inst = FlatInstance::unscoped(3, 0);
        assert_eq!(paper_count(&inst).to_u64(), Some(0));
        let (sols, _) = paper_solutions(&inst, 10);
        assert!(sols.is_empty());
    }

    #[test]
    fn empty_instance_yields_empty_program() {
        let inst = FlatInstance::unscoped(0, 3);
        assert_eq!(paper_count(&inst).to_u64(), Some(1));
        let (sols, _) = paper_solutions(&inst, 10);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].blocks.is_empty());
    }

    #[test]
    fn solutions_cover_all_holes_exactly_once() {
        let inst = fig7();
        let (sols, _) = paper_solutions(&inst, 10_000);
        for s in &sols {
            let mut seen = [false; 5];
            for b in &s.blocks {
                for &h in b {
                    assert!(!seen[h], "hole {h} appears twice in {s:?}");
                    seen[h] = true;
                }
            }
            assert!(seen.iter().all(|&x| x), "missing hole in {s:?}");
        }
    }

    #[test]
    fn local_blocks_stay_within_scope_capacity() {
        let inst = fig7();
        let (sols, _) = paper_solutions(&inst, 10_000);
        for s in &sols {
            let locals = s
                .pools
                .iter()
                .filter(|p| matches!(p, PoolRef::Local(0)))
                .count();
            assert!(locals <= 2, "too many local blocks in {s:?}");
            let globals = s
                .pools
                .iter()
                .filter(|p| matches!(p, PoolRef::Global))
                .count();
            assert!(globals <= 2, "too many global blocks in {s:?}");
        }
    }
}
