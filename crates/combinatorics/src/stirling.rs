//! Stirling numbers of the second kind and Bell numbers, exact
//! (`BigUint`) and floating-point.
//!
//! The paper (§4.1.1) counts the SPE solution set without scopes as
//! `S = Σ_{i=1}^{k} {n i}` with the convention `{n k} = {n n}` for
//! `k > n`.

use spe_bignum::BigUint;
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

fn stirling_cache() -> &'static Mutex<HashMap<(u32, u32), BigUint>> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), BigUint>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Exact Stirling number of the second kind `{n k}`: the number of ways to
/// partition `n` labeled elements into `k` non-empty unlabeled blocks.
///
/// Computed with the triangular recurrence
/// `{n k} = k · {n-1 k} + {n-1 k-1}` and memoized process-wide.
///
/// # Examples
///
/// ```
/// use spe_combinatorics::stirling2;
/// assert_eq!(stirling2(5, 2).to_u64(), Some(15));
/// assert_eq!(stirling2(4, 2).to_u64(), Some(7));
/// assert_eq!(stirling2(0, 0).to_u64(), Some(1));
/// assert_eq!(stirling2(3, 5).to_u64(), Some(0));
/// ```
pub fn stirling2(n: u32, k: u32) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    if n == 0 {
        return BigUint::one(); // n == 0 and k == 0
    }
    if k == 0 {
        return BigUint::zero();
    }
    if k == n || k == 1 {
        return BigUint::one();
    }
    if let Some(hit) = stirling_cache().lock().expect("cache lock").get(&(n, k)) {
        return hit.clone();
    }
    // Build the needed rows iteratively to avoid deep recursion.
    let mut row: Vec<BigUint> = vec![BigUint::one()]; // row for m = 1: {1 1}
    for m in 2..=n {
        let width = (m as usize).min(k as usize + 1);
        let mut next: Vec<BigUint> = Vec::with_capacity(width);
        for j in 1..=m.min(k) {
            let take_prev_same = if (j as usize) <= row.len() {
                let mut v = row[j as usize - 1].clone();
                v.mul_word(j as u64);
                v
            } else {
                BigUint::zero()
            };
            let take_prev_less = if j >= 2 && (j as usize - 1) <= row.len() {
                row[j as usize - 2].clone()
            } else {
                BigUint::zero()
            };
            next.push(&take_prev_same + &take_prev_less);
        }
        row = next;
    }
    let result = row
        .get(k as usize - 1)
        .cloned()
        .unwrap_or_else(BigUint::zero);
    stirling_cache()
        .lock()
        .expect("cache lock")
        .insert((n, k), result.clone());
    result
}

/// The paper's clamped Stirling number: `{n k}` with `{n k} = {n n}` for
/// `k > n` (§4.1.1, "we consider at most n partitions").
///
/// ```
/// use spe_combinatorics::stirling2_clamped;
/// assert_eq!(stirling2_clamped(3, 7).to_u64(), Some(1)); // {3 3}
/// ```
pub fn stirling2_clamped(n: u32, k: u32) -> BigUint {
    stirling2(n, k.min(n))
}

/// Number of partitions of `n` elements into **at most** `k` blocks:
/// `Σ_{i=1}^{min(n,k)} {n i}`, with the empty partition counting once when
/// `n == 0`. This is the paper's `PARTITIONS(Q, k)` cardinality and its
/// Equation (1).
///
/// ```
/// use spe_combinatorics::partitions_at_most;
/// assert_eq!(partitions_at_most(5, 2).to_u64(), Some(16)); // {5 1}+{5 2}
/// assert_eq!(partitions_at_most(5, 5).to_u64(), Some(52)); // Bell(5)
/// assert_eq!(partitions_at_most(0, 3).to_u64(), Some(1));
/// ```
pub fn partitions_at_most(n: u32, k: u32) -> BigUint {
    if n == 0 {
        return BigUint::one();
    }
    let mut acc = BigUint::zero();
    for i in 1..=k.min(n) {
        acc += &stirling2(n, i);
    }
    acc
}

/// Bell number `B(n)`: the number of partitions of an `n`-element set.
///
/// ```
/// use spe_combinatorics::bell;
/// assert_eq!(bell(5).to_u64(), Some(52));
/// assert_eq!(bell(0).to_u64(), Some(1));
/// ```
pub fn bell(n: u32) -> BigUint {
    partitions_at_most(n, n)
}

/// Floating-point estimate of `Σ_{i=1}^{k} {n i}` via the asymptotic
/// `{n k} ~ k^n / k!` used in the paper's Equation (2). Useful for quick
/// magnitude estimates; exact values should use [`partitions_at_most`].
///
/// ```
/// use spe_combinatorics::partitions_at_most_estimate;
/// let est = partitions_at_most_estimate(20, 3);
/// assert!(est > 0.0);
/// ```
pub fn partitions_at_most_estimate(n: u32, k: u32) -> f64 {
    let mut acc = 0.0f64;
    let mut factorial = 1.0f64;
    for i in 1..=k.max(1) {
        factorial *= i as f64;
        acc += (i as f64).powi(n as i32) / factorial;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_stirling_values() {
        // Rows 1..6 of the Stirling triangle.
        let expect: &[(u32, u32, u64)] = &[
            (1, 1, 1),
            (2, 1, 1),
            (2, 2, 1),
            (3, 2, 3),
            (4, 2, 7),
            (4, 3, 6),
            (5, 2, 15),
            (5, 3, 25),
            (5, 4, 10),
            (6, 3, 90),
            (7, 4, 350),
            (10, 5, 42525),
        ];
        for &(n, k, v) in expect {
            assert_eq!(stirling2(n, k).to_u64(), Some(v), "{{{n} {k}}}");
        }
    }

    #[test]
    fn stirling_recurrence_holds() {
        for n in 2..12u32 {
            for k in 1..=n {
                let mut lhs = stirling2(n - 1, k);
                lhs.mul_word(k as u64);
                let rhs = &lhs + &stirling2(n - 1, k - 1);
                assert_eq!(stirling2(n, k), rhs, "recurrence at ({n},{k})");
            }
        }
    }

    #[test]
    fn bell_numbers() {
        let expect = [1u64, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975];
        for (n, &v) in expect.iter().enumerate() {
            assert_eq!(bell(n as u32).to_u64(), Some(v), "B({n})");
        }
    }

    #[test]
    fn figure2_reduction_is_bell_5() {
        // §2: the Figure 2 skeleton has 5 holes and 5 variables; naive
        // enumeration gives 3125 programs, SPE gives 52.
        assert_eq!(bell(5).to_u64(), Some(52));
        assert_eq!(5u64.pow(5), 3125);
    }

    #[test]
    fn clamping_convention() {
        assert_eq!(stirling2_clamped(4, 9), stirling2(4, 4));
        assert_eq!(partitions_at_most(3, 10), bell(3));
    }

    #[test]
    fn large_values_do_not_overflow() {
        // {100 50} is astronomically large; just sanity-check magnitude.
        let v = stirling2(100, 50);
        assert!(v.log10() > 80.0);
    }

    #[test]
    fn estimate_tracks_exact_for_moderate_n() {
        for (n, k) in [(10u32, 2u32), (15, 3), (20, 4)] {
            let exact = partitions_at_most(n, k).to_f64();
            let est = partitions_at_most_estimate(n, k);
            let ratio = est / exact;
            assert!(
                (0.5..2.0).contains(&ratio),
                "estimate off at ({n},{k}): {est} vs {exact}"
            );
        }
    }
}
