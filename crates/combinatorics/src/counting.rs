//! Exact prefix counting and unranking for **constrained** canonical
//! spaces.
//!
//! [`crate::enumerate_canonical`] walks the valid partitions of a
//! [`GeneralInstance`] — those whose blocks admit a system of distinct
//! representatives (SDR) — in lexicographic RGS order. For *unconstrained*
//! instances (every hole sees every variable) the space is plain
//! `Rgs(n, k)` and closed-form weights exist ([`crate::rgs_completions`],
//! [`crate::partitions_at_most`], [`crate::rgs_unrank`]). This module
//! supplies the same three operations — count, prefix weight, unrank —
//! for arbitrary visibility constraints, which is what lets shards of a
//! constrained canonical space jump straight to their emission boundary
//! without materializing any solution list.
//!
//! The engine is a memoized DP over RGS prefixes (`DESIGN.md §8`): a
//! prefix is summarized by `(position, multiset of block masks)`, where a
//! block's mask is the intersection of its member holes' allowed sets.
//! Two facts make this exact:
//!
//! 1. the number of valid completions of a prefix depends only on that
//!    summary (future holes see fixed masks, and blocks are
//!    interchangeable up to their masks), so states merge; and
//! 2. block masks only shrink and blocks are only added as a prefix
//!    grows, so an SDR failure at a prefix is *hereditary* — no
//!    completion can restore it — letting the DP close those subtrees
//!    with an exact count of zero (the SDR-pruning lemma).

use crate::canonical::has_sdr;
use crate::instance::GeneralInstance;
use spe_bignum::BigUint;
use std::collections::HashMap;

/// Exact counting, unranking and iteration over the *constrained*
/// canonical space of a [`GeneralInstance`]: the valid partitions of its
/// holes in lexicographic RGS order — the same sequence
/// [`crate::enumerate_canonical`] visits.
///
/// One value owns the memoized prefix-count DP; every operation reuses
/// (and grows) that cache, so interleaving [`total`](Self::total),
/// [`prefix_completions`](Self::prefix_completions) and
/// [`unrank`](Self::unrank) calls is cheap. On unconstrained instances
/// the results coincide with the closed forms
/// ([`crate::partitions_at_most`], [`crate::rgs_completions`],
/// [`crate::rgs_unrank`]), which the property tests assert.
///
/// `ConstrainedRgs` is also an [`Iterator`] over the solutions
/// (each item produced by unranking the next index — O(n·k) memoized DP
/// lookups per item); [`skip_to`](Self::skip_to) repositions it
/// mid-space in closed form, mirroring [`crate::Rgs::skip_to`].
///
/// # Examples
///
/// ```
/// use spe_combinatorics::{canonical_solutions, ConstrainedRgs, GeneralInstance};
///
/// // Holes 0 and 1 see only variable 0; hole 2 sees both variables.
/// // Any partition separating holes 0 and 1 leaves two blocks that both
/// // need variable 0, so only 000 and 001 are valid.
/// let inst = GeneralInstance {
///     allowed: vec![vec![0], vec![0], vec![0, 1]],
///     num_vars: 2,
/// };
/// let mut space = ConstrainedRgs::new(&inst);
/// assert_eq!(space.total().to_u64(), Some(2));
/// assert_eq!(space.unrank_u64(1), vec![0, 0, 1]);
/// // The iterator yields exactly the enumerator's sequence.
/// let all: Vec<_> = space.collect();
/// assert_eq!(all, canonical_solutions(&inst, usize::MAX).0);
/// ```
#[derive(Debug, Clone)]
pub struct ConstrainedRgs<'a> {
    inst: &'a GeneralInstance,
    /// `masks[i]` — allowed-variable bitmask of hole `i`.
    masks: Vec<u128>,
    /// DP cache, one map per prefix length: `memo[pos][sorted masks]`.
    memo: Vec<HashMap<Vec<u128>, BigUint>>,
    /// Number of memoized states across all positions.
    states: usize,
    /// Total space size, filled on first use.
    cached_total: Option<BigUint>,
    /// Iterator cursor: rank of the next solution to yield.
    cursor: BigUint,
}

impl<'a> ConstrainedRgs<'a> {
    /// Creates the counter/iterator for an instance.
    ///
    /// # Panics
    ///
    /// Panics if the instance uses variable ids `>= 128` (the mask
    /// width); SPE type groups within the paper's 10K-variant budget are
    /// far smaller.
    pub fn new(inst: &'a GeneralInstance) -> ConstrainedRgs<'a> {
        let masks = (0..inst.num_holes()).map(|i| inst.mask(i)).collect();
        ConstrainedRgs {
            inst,
            masks,
            memo: vec![HashMap::new(); inst.num_holes() + 1],
            states: 0,
            cached_total: None,
            cursor: BigUint::zero(),
        }
    }

    /// Number of distinct prefix summaries memoized so far — the DP's
    /// true cost metric. Grows with the number of distinct block-mask
    /// multisets the instance's constraint structure can produce, which
    /// is small for scope-shaped constraints but can be exponential for
    /// adversarial ones (e.g. dozens of interleaved declaration-order
    /// prefixes); [`try_total_within`](Self::try_total_within) is the
    /// bounded entry point for callers that must stay cheap.
    pub fn states(&self) -> usize {
        self.states
    }

    /// [`total`](Self::total) with a hard ceiling on DP work: returns
    /// `None` (leaving the cache intact for a later retry or a coarser
    /// strategy) once more than `max_states` prefix summaries would be
    /// memoized. A `Some` result is exact — and guarantees that *every*
    /// later [`prefix_completions`](Self::prefix_completions) /
    /// [`unrank`](Self::unrank) call on this instance stays within the
    /// same state bound, because the full count already visited every
    /// reachable summary. This is the gate test sharded enumeration
    /// runs before committing to the shard-native path.
    ///
    /// ```
    /// use spe_combinatorics::{ConstrainedRgs, FlatInstance};
    ///
    /// let inst = FlatInstance::unscoped(8, 4).to_general();
    /// let mut space = ConstrainedRgs::new(&inst);
    /// assert!(space.try_total_within(10_000).is_some());
    /// assert!(ConstrainedRgs::new(&inst).try_total_within(2).is_none());
    /// ```
    pub fn try_total_within(&mut self, max_states: usize) -> Option<BigUint> {
        if let Some(t) = &self.cached_total {
            return Some(t.clone());
        }
        let t = self.completions_within(0, &mut Vec::new(), max_states)?;
        self.cached_total = Some(t.clone());
        Some(t)
    }

    /// Exact number of valid partitions of the instance — the
    /// constrained generalization of [`crate::partitions_at_most`]`(n, k)`.
    ///
    /// ```
    /// use spe_combinatorics::{partitions_at_most, ConstrainedRgs, FlatInstance};
    ///
    /// // Unconstrained: the closed form.
    /// let free = FlatInstance::unscoped(6, 3).to_general();
    /// assert_eq!(ConstrainedRgs::new(&free).total(), partitions_at_most(6, 3));
    /// ```
    pub fn total(&mut self) -> BigUint {
        self.try_total_within(usize::MAX)
            .expect("unlimited DP cannot bail")
    }

    /// Number of valid full solutions extending `prefix` (the prefix's
    /// subtree weight) — the constrained generalization of
    /// [`crate::rgs_completions`]. A prefix whose blocks already lack an
    /// SDR weighs exactly zero.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is longer than the hole count, violates the
    /// restricted-growth condition, or names a block `>= num_vars`.
    ///
    /// ```
    /// use spe_combinatorics::{ConstrainedRgs, GeneralInstance};
    ///
    /// let inst = GeneralInstance {
    ///     allowed: vec![vec![0], vec![0], vec![0, 1]],
    ///     num_vars: 2,
    /// };
    /// let mut space = ConstrainedRgs::new(&inst);
    /// assert_eq!(space.prefix_completions(&[0]).to_u64(), Some(2));
    /// // Separating holes 0 and 1 leaves no variable for one block.
    /// assert_eq!(space.prefix_completions(&[0, 1]).to_u64(), Some(0));
    /// ```
    pub fn prefix_completions(&mut self, prefix: &[usize]) -> BigUint {
        let mut blocks = self.replay(prefix);
        self.completions(prefix.len(), &mut blocks)
    }

    /// Returns the solution of the given lexicographic rank, walking the
    /// index down the DP's cumulative digit weights in O(n·k) memoized
    /// lookups — no earlier solution is generated.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total()`.
    ///
    /// ```
    /// use spe_bignum::BigUint;
    /// use spe_combinatorics::{canonical_solutions, ConstrainedRgs, FlatInstance, FlatScope};
    ///
    /// // Figure 7 of the paper: a constrained two-scope instance.
    /// let inst = FlatInstance::new(vec![0, 1, 4], 2, vec![FlatScope { holes: vec![2, 3], vars: 2 }])
    ///     .to_general();
    /// let serial = canonical_solutions(&inst, usize::MAX).0;
    /// let mut space = ConstrainedRgs::new(&inst);
    /// for (i, rgs) in serial.iter().enumerate() {
    ///     assert_eq!(&space.unrank(&BigUint::from(i as u64)), rgs);
    /// }
    /// ```
    pub fn unrank(&mut self, index: &BigUint) -> Vec<usize> {
        assert!(
            *index < self.total(),
            "index out of range for the constrained space"
        );
        let n = self.inst.num_holes();
        let mut idx = index.clone();
        let mut blocks: Vec<u128> = Vec::new();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut placed = false;
            for d in 0..=blocks.len() {
                let saved = match self.extend(&mut blocks, d, i) {
                    None => continue,
                    Some(saved) => saved,
                };
                let w = self.completions(i + 1, &mut blocks);
                if idx < w {
                    out.push(d);
                    placed = true;
                    break;
                }
                idx = idx.checked_sub(&w).expect("cumulative weights cover idx");
                Self::retract(&mut blocks, d, saved);
            }
            assert!(placed, "index out of range at position {i}");
        }
        out
    }

    /// [`unrank`](Self::unrank) for a machine-word index.
    pub fn unrank_u64(&mut self, index: u64) -> Vec<usize> {
        self.unrank(&BigUint::from(index))
    }

    /// Repositions the iterator at the lexicographically smallest valid
    /// solution `>= prefix` (the prefix padded with zeros); that solution
    /// is the next item yielded. Computed in closed form by summing the
    /// weights of the digit choices below the prefix — no solution before
    /// the boundary is generated. An empty prefix rewinds to the start.
    ///
    /// # Panics
    ///
    /// Panics on invalid prefixes, as for
    /// [`prefix_completions`](Self::prefix_completions).
    ///
    /// ```
    /// use spe_combinatorics::{ConstrainedRgs, GeneralInstance};
    ///
    /// let inst = GeneralInstance {
    ///     allowed: vec![vec![0], vec![0], vec![0, 1]],
    ///     num_vars: 2,
    /// };
    /// let mut space = ConstrainedRgs::new(&inst);
    /// space.skip_to(&[0, 0, 1]);
    /// assert_eq!(space.next(), Some(vec![0, 0, 1]));
    /// assert_eq!(space.next(), None);
    /// ```
    pub fn skip_to(&mut self, prefix: &[usize]) {
        self.cursor = self.rank_of_boundary(prefix);
    }

    /// Number of valid solutions lexicographically smaller than the
    /// zero-padded extension of `prefix` — the rank the first in-boundary
    /// solution would have. Equals [`count`](Self::count) when the whole
    /// space precedes the boundary.
    pub fn rank_of_boundary(&mut self, prefix: &[usize]) -> BigUint {
        // Validate eagerly so errors surface as for prefix_completions.
        let _ = self.replay(prefix);
        let mut rank = BigUint::zero();
        let mut blocks: Vec<u128> = Vec::new();
        for (i, &digit) in prefix.iter().enumerate() {
            for d in 0..digit {
                if let Some(saved) = self.extend(&mut blocks, d, i) {
                    rank += &self.completions(i + 1, &mut blocks);
                    Self::retract(&mut blocks, d, saved);
                }
            }
            // Descend along the prefix digit itself; a dead branch means
            // nothing below the remaining prefix exists, so the rank so
            // far is already the boundary rank.
            match self.extend(&mut blocks, digit, i) {
                Some(_) => {}
                None => return rank,
            }
        }
        rank
    }

    /// Applies digit `d` for hole `i` to the block stack. Returns the
    /// replaced mask (`Some(previous)` for a join, `Some(0)` for a newly
    /// opened block) or `None` when the move is infeasible (empty merge,
    /// or no block left to open).
    fn extend(&self, blocks: &mut Vec<u128>, d: usize, i: usize) -> Option<u128> {
        if d < blocks.len() {
            let merged = blocks[d] & self.masks[i];
            if merged == 0 {
                return None;
            }
            let saved = blocks[d];
            blocks[d] = merged;
            Some(saved)
        } else if d == blocks.len() && d < self.inst.num_vars {
            blocks.push(self.masks[i]);
            Some(0)
        } else {
            None
        }
    }

    /// Undoes [`extend`](Self::extend).
    fn retract(blocks: &mut Vec<u128>, d: usize, saved: u128) {
        if saved == 0 && d + 1 == blocks.len() {
            blocks.pop();
        } else {
            blocks[d] = saved;
        }
    }

    /// Replays a prefix into its block-mask stack, validating the
    /// restricted-growth condition. Digits whose move is infeasible
    /// (empty merge) still produce a well-defined stack — their subtree
    /// simply counts zero — so dead prefixes are answerable, not errors.
    fn replay(&self, prefix: &[usize]) -> Vec<u128> {
        let n = self.inst.num_holes();
        assert!(prefix.len() <= n, "prefix longer than the hole count");
        let mut blocks: Vec<u128> = Vec::new();
        for (i, &d) in prefix.iter().enumerate() {
            assert!(
                d <= blocks.len(),
                "growth condition violated at position {i}"
            );
            assert!(
                d < self.inst.num_vars,
                "prefix uses block {d} but the instance has {} variables",
                self.inst.num_vars
            );
            if d < blocks.len() {
                blocks[d] &= self.masks[i];
            } else {
                blocks.push(self.masks[i]);
            }
        }
        blocks
    }

    /// The DP: number of valid completions of a prefix summarized by its
    /// position and block-mask stack. `blocks` is restored before
    /// returning. Memoized per position on the *sorted* mask vector —
    /// see the module docs for why the summary is sound.
    fn completions(&mut self, pos: usize, blocks: &mut Vec<u128>) -> BigUint {
        self.completions_within(pos, blocks, usize::MAX)
            .expect("unlimited DP cannot bail")
    }

    /// [`completions`](Self::completions), bailing with `None` once the
    /// memo would exceed `max_states` entries. Already-cached states are
    /// always answered.
    fn completions_within(
        &mut self,
        pos: usize,
        blocks: &mut Vec<u128>,
        max_states: usize,
    ) -> Option<BigUint> {
        let mut key: Vec<u128> = blocks.clone();
        key.sort_unstable();
        if let Some(hit) = self.memo[pos].get(&key) {
            return Some(hit.clone());
        }
        if self.states >= max_states {
            return None;
        }
        let value = if blocks.contains(&0) || !has_sdr(blocks) {
            // SDR-pruning lemma: masks only shrink, so the failure is
            // hereditary and the whole subtree is invalid.
            BigUint::zero()
        } else if pos == self.inst.num_holes() {
            BigUint::one()
        } else {
            let mut sum = BigUint::zero();
            for d in 0..=blocks.len() {
                if let Some(saved) = self.extend(blocks, d, pos) {
                    let child = self.completions_within(pos + 1, blocks, max_states);
                    Self::retract(blocks, d, saved);
                    sum += &child?;
                }
            }
            sum
        };
        self.states += 1;
        self.memo[pos].insert(key, value.clone());
        Some(value)
    }
}

impl Iterator for ConstrainedRgs<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let total = self.total();
        if self.cursor >= total {
            return None;
        }
        let cursor = self.cursor.clone();
        let item = self.unrank(&cursor);
        self.cursor += &BigUint::one();
        Some(item)
    }
}

/// Exact number of valid partitions of an instance — one-shot convenience
/// over [`ConstrainedRgs::total`]. Unlike [`crate::canonical_count`] this
/// never enumerates: huge constrained spaces are counted through the DP.
///
/// ```
/// use spe_combinatorics::{canonical_count, constrained_count, FlatInstance, FlatScope};
///
/// let inst = FlatInstance::new(vec![0, 1, 4], 2, vec![FlatScope { holes: vec![2, 3], vars: 2 }])
///     .to_general();
/// assert_eq!(constrained_count(&inst), canonical_count(&inst)); // 35
/// ```
pub fn constrained_count(inst: &GeneralInstance) -> BigUint {
    ConstrainedRgs::new(inst).total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{FlatInstance, FlatScope};
    use crate::{canonical_solutions, partitions_at_most, rgs_completions, rgs_unrank, Rgs};

    fn fig7() -> GeneralInstance {
        FlatInstance::new(
            vec![0, 1, 4],
            2,
            vec![FlatScope {
                holes: vec![2, 3],
                vars: 2,
            }],
        )
        .to_general()
    }

    fn two_pools() -> GeneralInstance {
        // Two type-disjoint pools plus one bridging hole.
        GeneralInstance {
            allowed: vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3], vec![1, 2]],
            num_vars: 4,
        }
    }

    #[test]
    fn count_matches_enumeration_on_constrained_instances() {
        for inst in [fig7(), two_pools()] {
            let serial = canonical_solutions(&inst, usize::MAX).0;
            assert_eq!(
                ConstrainedRgs::new(&inst).total().to_u64(),
                Some(serial.len() as u64)
            );
        }
    }

    #[test]
    fn count_matches_closed_form_on_unconstrained_instances() {
        for n in 0..8usize {
            for k in 1..5usize {
                let inst = FlatInstance::unscoped(n, k).to_general();
                assert_eq!(
                    ConstrainedRgs::new(&inst).total(),
                    partitions_at_most(n as u32, k as u32),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn prefix_completions_generalize_rgs_completions() {
        // Unconstrained: every prefix's weight is the closed form.
        let inst = FlatInstance::unscoped(6, 3).to_general();
        let mut space = ConstrainedRgs::new(&inst);
        for prefix in Rgs::new(3, 3) {
            let blocks = crate::rgs_block_count(&prefix);
            assert_eq!(
                space.prefix_completions(&prefix),
                rgs_completions(blocks, 3, 3),
                "prefix {prefix:?}"
            );
        }
    }

    #[test]
    fn prefix_completions_sum_to_the_parent_weight() {
        let inst = two_pools();
        let mut space = ConstrainedRgs::new(&inst);
        for prefix in [vec![], vec![0], vec![0, 1], vec![0, 0, 1]] {
            let parent = space.prefix_completions(&prefix);
            let mut children = BigUint::zero();
            let max_digit = crate::rgs_block_count(&prefix).min(inst.num_vars - 1);
            for d in 0..=max_digit {
                let mut child = prefix.clone();
                child.push(d);
                children += &space.prefix_completions(&child);
            }
            assert_eq!(parent, children, "prefix {prefix:?}");
        }
    }

    #[test]
    fn dead_prefixes_weigh_zero() {
        let inst = GeneralInstance {
            allowed: vec![vec![0], vec![0], vec![0, 1]],
            num_vars: 2,
        };
        let mut space = ConstrainedRgs::new(&inst);
        // Splitting holes 0 and 1 leaves both blocks needing variable 0.
        assert!(space.prefix_completions(&[0, 1]).is_zero());
        assert_eq!(space.total().to_u64(), Some(2));
    }

    #[test]
    fn unrank_inverts_canonical_enumeration() {
        for inst in [fig7(), two_pools()] {
            let serial = canonical_solutions(&inst, usize::MAX).0;
            let mut space = ConstrainedRgs::new(&inst);
            for (i, rgs) in serial.iter().enumerate() {
                assert_eq!(&space.unrank_u64(i as u64), rgs, "rank {i}");
            }
        }
    }

    #[test]
    fn unrank_matches_rgs_unrank_when_unconstrained() {
        let inst = FlatInstance::unscoped(7, 4).to_general();
        let mut space = ConstrainedRgs::new(&inst);
        let total = space.total().to_u64().expect("small");
        for i in 0..total {
            assert_eq!(space.unrank_u64(i), rgs_unrank(7, 4, i), "rank {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_rejects_out_of_range_indices() {
        let inst = fig7();
        let mut space = ConstrainedRgs::new(&inst);
        let total = space.total().to_u64().expect("small");
        let _ = space.unrank_u64(total);
    }

    #[test]
    fn iterator_yields_the_enumerator_sequence() {
        for inst in [fig7(), two_pools()] {
            let serial = canonical_solutions(&inst, usize::MAX).0;
            let mine: Vec<Vec<usize>> = ConstrainedRgs::new(&inst).collect();
            assert_eq!(mine, serial);
        }
    }

    #[test]
    fn skip_to_resumes_exactly() {
        let inst = fig7();
        let serial = canonical_solutions(&inst, usize::MAX).0;
        for (i, rgs) in serial.iter().enumerate() {
            let mut space = ConstrainedRgs::new(&inst);
            space.skip_to(rgs);
            let tail: Vec<Vec<usize>> = space.collect();
            assert_eq!(tail, serial[i..].to_vec(), "resumed at {rgs:?}");
        }
    }

    #[test]
    fn skip_to_a_dead_boundary_lands_on_the_next_live_solution() {
        let inst = GeneralInstance {
            allowed: vec![vec![0], vec![0], vec![0, 1]],
            num_vars: 2,
        };
        // The prefix [0, 1] is dead (both blocks would need variable 0)
        // and nothing follows its subtree, so the iterator is exhausted.
        let mut space = ConstrainedRgs::new(&inst);
        space.skip_to(&[0, 1]);
        assert_eq!(space.next(), None);
    }

    #[test]
    fn empty_and_degenerate_instances() {
        // No holes: exactly the empty partition.
        let empty = GeneralInstance {
            allowed: vec![],
            num_vars: 3,
        };
        assert_eq!(constrained_count(&empty).to_u64(), Some(1));
        assert_eq!(ConstrainedRgs::new(&empty).total().to_u64(), Some(1));
        // A hole with an empty allowed set: nothing.
        let dead = GeneralInstance {
            allowed: vec![vec![0], vec![]],
            num_vars: 2,
        };
        assert_eq!(constrained_count(&dead).to_u64(), Some(0));
        // No variables at all.
        let no_vars = GeneralInstance {
            allowed: vec![vec![]],
            num_vars: 0,
        };
        assert_eq!(constrained_count(&no_vars).to_u64(), Some(0));
    }
}
