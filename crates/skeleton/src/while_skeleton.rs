//! Skeletons over the WHILE language (§3 of the paper).
//!
//! WHILE has no lexical scoping, so a skeleton is just the unscoped
//! instance `PARTITIONS(n, k)` — the setting of the paper's Figure 5 and
//! Examples 1–5.
//!
//! Variant realization is template-compiled like the mini-C backend: the
//! program is printed once into static segments plus one slot per
//! occurrence ([`spe_while::print_template`]), every variable name is
//! interned into a [`NameTable`], and realizing a partition is a
//! segment/slot splice into a reusable buffer
//! ([`WhileSkeleton::render_rgs_into`]) — no per-variant occurrence map,
//! no AST rebuild. The legacy AST path
//! ([`WhileSkeleton::realize_rgs`]) is kept as the differential oracle;
//! both emit byte-identical source by construction.

use crate::render::{NameId, NameTable, RenderTemplate, TemplatePart};
use spe_combinatorics::{labels_to_rgs, rgs_to_blocks, FlatInstance};
use spe_while::{WOcc, WParseError, WPiece, WProgram};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A WHILE program viewed as a skeleton.
#[derive(Debug, Clone)]
pub struct WhileSkeleton {
    program: WProgram,
    occs: Vec<WOcc>,
    names: Vec<String>,
    variables: Vec<String>,
    instance: FlatInstance,
    /// Interned variable names; `var_ids[j]` is variable `j`'s id.
    table: NameTable,
    var_ids: Vec<NameId>,
    /// Compiled render template, built lazily by one printer walk.
    template: OnceLock<RenderTemplate>,
}

impl WhileSkeleton {
    /// Parses WHILE source into a skeleton.
    ///
    /// # Errors
    ///
    /// Returns [`WParseError`] on malformed source.
    ///
    /// # Examples
    ///
    /// ```
    /// use spe_skeleton::WhileSkeleton;
    /// let w = WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b")?;
    /// assert_eq!(w.num_holes(), 6);
    /// # Ok::<(), spe_while::WParseError>(())
    /// ```
    pub fn from_source(src: &str) -> Result<WhileSkeleton, WParseError> {
        Ok(WhileSkeleton::from_program(spe_while::parse(src)?))
    }

    /// Builds a skeleton from a parsed WHILE program.
    pub fn from_program(program: WProgram) -> WhileSkeleton {
        let mut occs = Vec::new();
        let mut names = Vec::new();
        program.for_each_occ(&mut |name, occ| {
            occs.push(occ);
            names.push(name.to_string());
        });
        let variables = program.variables();
        let instance = FlatInstance::unscoped(occs.len(), variables.len());
        let mut table = NameTable::new();
        let var_ids = variables.iter().map(|v| table.intern(v)).collect();
        WhileSkeleton {
            program,
            occs,
            names,
            variables,
            instance,
            table,
            var_ids,
            template: OnceLock::new(),
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &WProgram {
        &self.program
    }

    /// Number of holes (variable occurrences).
    pub fn num_holes(&self) -> usize {
        self.occs.len()
    }

    /// Distinct variable names, in order of first occurrence.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// The unscoped enumeration instance.
    pub fn instance(&self) -> &FlatInstance {
        &self.instance
    }

    /// The interned candidate-name table.
    pub fn names(&self) -> &NameTable {
        &self.table
    }

    /// The compiled render template, built on first use by one printer
    /// walk ([`spe_while::print_template`]); every occurrence is a hole,
    /// hole `i` being the `i`-th occurrence in source order.
    pub fn template(&self) -> &RenderTemplate {
        self.template.get_or_init(|| {
            let hole_of_occ: HashMap<WOcc, u32> = self
                .occs
                .iter()
                .enumerate()
                .map(|(i, &o)| (o, i as u32))
                .collect();
            RenderTemplate::from_parts(spe_while::print_template(&self.program).into_iter().map(
                |piece| match piece {
                    WPiece::Text(t) => TemplatePart::Text(t),
                    WPiece::Occ { occ, name } => TemplatePart::Slot {
                        hole: hole_of_occ[&occ],
                        default: self
                            .table
                            .lookup(&name)
                            .expect("every occurrence names a known variable"),
                    },
                },
            ))
        })
    }

    /// The characteristic vector of the original program as an RGS — the
    /// paper's restricted growth string of Example 5.
    ///
    /// ```
    /// use spe_skeleton::WhileSkeleton;
    /// let w = WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b")?;
    /// assert_eq!(w.original_rgs(), vec![0, 1, 0, 0, 0, 1]); // "010001"
    /// # Ok::<(), spe_while::WParseError>(())
    /// ```
    pub fn original_rgs(&self) -> Vec<usize> {
        let labels: Vec<usize> = self
            .names
            .iter()
            .map(|n| {
                self.variables
                    .iter()
                    .position(|v| v == n)
                    .expect("name is a known variable")
            })
            .collect();
        labels_to_rgs(&labels)
    }

    /// Fills `names` with the hole-indexed name choices realizing `rgs`
    /// (block `j` takes the `j`-th variable).
    ///
    /// # Panics
    ///
    /// Panics if the RGS length differs from the hole count or uses more
    /// blocks than there are variables.
    pub fn rgs_names(&self, rgs: &[usize], names: &mut Vec<NameId>) {
        assert_eq!(rgs.len(), self.occs.len(), "RGS must cover all holes");
        names.clear();
        names.extend(rgs.iter().map(|&block| {
            *self
                .var_ids
                .get(block)
                .expect("no more blocks than variables")
        }));
    }

    /// Renders the variant realizing `rgs` into `out` (cleared first) via
    /// the compiled template — the hot path: with reused buffers this
    /// performs no per-variant allocation beyond the name vector refill.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`WhileSkeleton::rgs_names`].
    pub fn render_rgs_into(&self, rgs: &[usize], names: &mut Vec<NameId>, out: &mut String) {
        self.rgs_names(rgs, names);
        self.template().render_into(names, &self.table, out);
    }

    /// [`render_rgs_into`](Self::render_rgs_into) allocating fresh
    /// buffers.
    pub fn render_rgs(&self, rgs: &[usize]) -> String {
        let mut names = Vec::with_capacity(rgs.len());
        let mut out = String::new();
        self.render_rgs_into(rgs, &mut names, &mut out);
        out
    }

    /// Realizes a partition (RGS over the holes) as a program by
    /// rebuilding the AST through an occurrence map: block `j` is filled
    /// with the `j`-th variable name.
    ///
    /// The legacy realization path, kept as the differential oracle for
    /// the template renderer ([`WhileSkeleton::render_rgs`] — byte
    /// identical via `to_string`); enumeration consumers should render
    /// through the template and re-parse when they need an AST.
    ///
    /// # Panics
    ///
    /// Panics if the RGS length differs from the hole count or uses more
    /// blocks than there are variables.
    pub fn realize_rgs(&self, rgs: &[usize]) -> WProgram {
        assert_eq!(rgs.len(), self.occs.len(), "RGS must cover all holes");
        let blocks = rgs_to_blocks(rgs);
        assert!(
            blocks.len() <= self.variables.len(),
            "more blocks than variables"
        );
        let mut map: HashMap<WOcc, String> = HashMap::new();
        for (b, members) in blocks.iter().enumerate() {
            for &m in members {
                map.insert(self.occs[m], self.variables[b].clone());
            }
        }
        self.program.realize(&map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_combinatorics::Rgs;
    use spe_while::{interpret, Outcome};

    fn fig5() -> WhileSkeleton {
        WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b").expect("parses")
    }

    #[test]
    fn figure5_shape() {
        let w = fig5();
        assert_eq!(w.num_holes(), 6);
        assert_eq!(w.variables(), &["a".to_string(), "b".to_string()]);
        assert_eq!(w.instance().naive_count().to_u64(), Some(64));
    }

    #[test]
    fn original_rgs_matches_example5() {
        assert_eq!(fig5().original_rgs(), vec![0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn example2_p2_rgs() {
        // P2 = ⟨a, b, b, b, a, b⟩ -> "011101".
        let w =
            WhileSkeleton::from_source("a := 10; b := 1; while b do b := a - b").expect("parses");
        assert_eq!(w.original_rgs(), vec![0, 1, 1, 1, 0, 1]);
    }

    #[test]
    fn template_has_one_slot_per_hole() {
        let w = fig5();
        assert_eq!(w.template().num_slots(), w.num_holes());
    }

    #[test]
    fn rendered_variants_match_the_legacy_oracle_byte_for_byte() {
        // The template splice must agree with the AST-rebuild path on
        // every variant of several skeletons.
        let srcs = [
            "a := 10; b := 1; while a do a := a - b",
            "i := 0; s := 0; while i < 3 do begin s := s + i; i := i + 1 end",
            "x := 3; if x < 5 and not (x = 2) then y := 1 else y := 2",
        ];
        for src in srcs {
            let w = WhileSkeleton::from_source(src).expect("parses");
            let k = w.variables().len();
            let mut names = Vec::new();
            let mut out = String::new();
            for rgs in Rgs::new(w.num_holes(), k) {
                w.render_rgs_into(&rgs, &mut names, &mut out);
                assert_eq!(
                    out,
                    w.realize_rgs(&rgs).to_string(),
                    "template drifted on {src} at {rgs:?}"
                );
            }
        }
    }

    #[test]
    fn render_all_variants_are_parseable_and_distinct() {
        let w = fig5();
        let mut seen = std::collections::HashSet::new();
        for rgs in Rgs::new(6, 2) {
            let src = w.render_rgs(&rgs);
            assert!(seen.insert(src.clone()), "duplicate variant: {src}");
            spe_while::parse(&src).unwrap_or_else(|e| panic!("{e}: {src}"));
        }
        assert_eq!(seen.len(), 32); // {6 1} + {6 2}
    }

    #[test]
    fn rendered_variants_run() {
        let w = fig5();
        for rgs in Rgs::new(6, 2) {
            let p = spe_while::parse(&w.render_rgs(&rgs)).expect("variant parses");
            // Every variant either terminates or times out; no crash.
            let _ = interpret(&p, 10_000).expect("interprets");
        }
    }

    #[test]
    fn identity_partition_reproduces_program_semantics() {
        let w = fig5();
        let original = interpret(w.program(), 10_000).expect("runs");
        let realized = spe_while::parse(&w.render_rgs(&w.original_rgs())).expect("parses");
        let again = interpret(&realized, 10_000).expect("runs");
        match (original, again) {
            (Outcome::Finished(a), Outcome::Finished(b)) => assert_eq!(a, b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn render_buffers_are_reused_without_reallocating() {
        let w = fig5();
        let rgss: Vec<Vec<usize>> = Rgs::new(6, 2).collect();
        let mut names = Vec::new();
        let mut out = String::new();
        w.render_rgs_into(&rgss[0], &mut names, &mut out); // warm-up
        let name_cap = names.capacity();
        let out_cap = out.capacity();
        for rgs in &rgss {
            w.render_rgs_into(rgs, &mut names, &mut out);
        }
        assert_eq!(names.capacity(), name_cap, "name buffer reallocated");
        assert_eq!(out.capacity(), out_cap, "output buffer reallocated");
    }

    #[test]
    #[should_panic(expected = "RGS must cover all holes")]
    fn realize_rejects_short_rgs() {
        let _ = fig5().realize_rgs(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "RGS must cover all holes")]
    fn render_rejects_short_rgs() {
        let _ = fig5().render_rgs(&[0, 1]);
    }
}
