//! Skeletons over the WHILE language (§3 of the paper).
//!
//! WHILE has no lexical scoping, so a skeleton is just the unscoped
//! instance `PARTITIONS(n, k)` — the setting of the paper's Figure 5 and
//! Examples 1–5.

use spe_combinatorics::{labels_to_rgs, rgs_to_blocks, FlatInstance};
use spe_while::{WOcc, WParseError, WProgram};
use std::collections::HashMap;

/// A WHILE program viewed as a skeleton.
#[derive(Debug, Clone)]
pub struct WhileSkeleton {
    program: WProgram,
    occs: Vec<WOcc>,
    names: Vec<String>,
    variables: Vec<String>,
    instance: FlatInstance,
}

impl WhileSkeleton {
    /// Parses WHILE source into a skeleton.
    ///
    /// # Errors
    ///
    /// Returns [`WParseError`] on malformed source.
    ///
    /// # Examples
    ///
    /// ```
    /// use spe_skeleton::WhileSkeleton;
    /// let w = WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b")?;
    /// assert_eq!(w.num_holes(), 6);
    /// # Ok::<(), spe_while::WParseError>(())
    /// ```
    pub fn from_source(src: &str) -> Result<WhileSkeleton, WParseError> {
        Ok(WhileSkeleton::from_program(spe_while::parse(src)?))
    }

    /// Builds a skeleton from a parsed WHILE program.
    pub fn from_program(program: WProgram) -> WhileSkeleton {
        let mut occs = Vec::new();
        let mut names = Vec::new();
        program.for_each_occ(&mut |name, occ| {
            occs.push(occ);
            names.push(name.to_string());
        });
        let variables = program.variables();
        let instance = FlatInstance::unscoped(occs.len(), variables.len());
        WhileSkeleton {
            program,
            occs,
            names,
            variables,
            instance,
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &WProgram {
        &self.program
    }

    /// Number of holes (variable occurrences).
    pub fn num_holes(&self) -> usize {
        self.occs.len()
    }

    /// Distinct variable names, in order of first occurrence.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// The unscoped enumeration instance.
    pub fn instance(&self) -> &FlatInstance {
        &self.instance
    }

    /// The characteristic vector of the original program as an RGS — the
    /// paper's restricted growth string of Example 5.
    ///
    /// ```
    /// use spe_skeleton::WhileSkeleton;
    /// let w = WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b")?;
    /// assert_eq!(w.original_rgs(), vec![0, 1, 0, 0, 0, 1]); // "010001"
    /// # Ok::<(), spe_while::WParseError>(())
    /// ```
    pub fn original_rgs(&self) -> Vec<usize> {
        let labels: Vec<usize> = self
            .names
            .iter()
            .map(|n| {
                self.variables
                    .iter()
                    .position(|v| v == n)
                    .expect("name is a known variable")
            })
            .collect();
        labels_to_rgs(&labels)
    }

    /// Realizes a partition (RGS over the holes) as a program: block `j`
    /// is filled with the `j`-th variable name.
    ///
    /// # Panics
    ///
    /// Panics if the RGS length differs from the hole count or uses more
    /// blocks than there are variables.
    pub fn realize_rgs(&self, rgs: &[usize]) -> WProgram {
        assert_eq!(rgs.len(), self.occs.len(), "RGS must cover all holes");
        let blocks = rgs_to_blocks(rgs);
        assert!(
            blocks.len() <= self.variables.len(),
            "more blocks than variables"
        );
        let mut map: HashMap<WOcc, String> = HashMap::new();
        for (b, members) in blocks.iter().enumerate() {
            for &m in members {
                map.insert(self.occs[m], self.variables[b].clone());
            }
        }
        self.program.realize(&map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_combinatorics::Rgs;
    use spe_while::{interpret, Outcome};

    fn fig5() -> WhileSkeleton {
        WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b").expect("parses")
    }

    #[test]
    fn figure5_shape() {
        let w = fig5();
        assert_eq!(w.num_holes(), 6);
        assert_eq!(w.variables(), &["a".to_string(), "b".to_string()]);
        assert_eq!(w.instance().naive_count().to_u64(), Some(64));
    }

    #[test]
    fn original_rgs_matches_example5() {
        assert_eq!(fig5().original_rgs(), vec![0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn example2_p2_rgs() {
        // P2 = ⟨a, b, b, b, a, b⟩ -> "011101".
        let w =
            WhileSkeleton::from_source("a := 10; b := 1; while b do b := a - b").expect("parses");
        assert_eq!(w.original_rgs(), vec![0, 1, 1, 1, 0, 1]);
    }

    #[test]
    fn realize_all_variants_are_parseable_and_distinct() {
        let w = fig5();
        let mut seen = std::collections::HashSet::new();
        for rgs in Rgs::new(6, 2) {
            let p = w.realize_rgs(&rgs);
            let src = p.to_string();
            assert!(seen.insert(src.clone()), "duplicate variant: {src}");
            spe_while::parse(&src).unwrap_or_else(|e| panic!("{e}: {src}"));
        }
        assert_eq!(seen.len(), 32); // {6 1} + {6 2}
    }

    #[test]
    fn realized_variants_run() {
        let w = fig5();
        for rgs in Rgs::new(6, 2) {
            let p = w.realize_rgs(&rgs);
            // Every variant either terminates or times out; no crash.
            let _ = interpret(&p, 10_000).expect("interprets");
        }
    }

    #[test]
    fn identity_partition_reproduces_program_semantics() {
        let w = fig5();
        let original = interpret(w.program(), 10_000).expect("runs");
        let realized = w.realize_rgs(&w.original_rgs());
        let again = interpret(&realized, 10_000).expect("runs");
        match (original, again) {
            (Outcome::Finished(a), Outcome::Finished(b)) => assert_eq!(a, b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "RGS must cover all holes")]
    fn realize_rejects_short_rgs() {
        let _ = fig5().realize_rgs(&[0, 1]);
    }
}
