//! Syntactic skeletons: hole extraction, scoped-instance construction and
//! program realization.
//!
//! A *skeleton* `P̂` is a program with every variable use site replaced by
//! a hole `□` (§3 of the SPE paper). This crate turns parsed mini-C (or
//! WHILE) programs into enumeration instances:
//!
//! 1. [`Skeleton::from_source`] parses and scope-analyzes a program, and
//!    records every hole with its *hole variable set* `v_i` (the visible,
//!    type-compatible variables at that use site);
//! 2. [`Skeleton::units`] groups holes into enumeration units — per
//!    function for the paper's *intra-procedural* granularity, or one unit
//!    for the whole file (*inter-procedural*, §4.3) — and splits each unit
//!    by variable type (the type-aware compact α-renaming of §3.2.2);
//! 3. each [`TypeGroup`] carries both the exact [`GeneralInstance`] and
//!    the paper's normal-form [`FlatInstance`];
//! 4. [`Skeleton::realize`] turns an enumerator solution back into
//!    compilable source by renaming use sites (declarations stay fixed;
//!    see `DESIGN.md` §2 on why this realization is faithful).
//!
//! # Examples
//!
//! ```
//! use spe_skeleton::{Skeleton, Granularity};
//!
//! // Figure 1 of the paper: 7 holes over 2 int variables.
//! let sk = Skeleton::from_source(
//!     "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }",
//! )?;
//! assert_eq!(sk.num_holes(), 7);
//! let units = sk.units(Granularity::Intra);
//! assert_eq!(units.len(), 1);
//! assert_eq!(units[0].groups.len(), 1); // one type group: int
//! # Ok::<(), spe_skeleton::SkeletonError>(())
//! ```

#![warn(missing_docs)]

use spe_combinatorics::{FlatInstance, FlatScope, GeneralInstance, PoolRef, ScopedSolution};
use spe_minic::ast::{OccId, Program, Type};
use spe_minic::sema::{ScopeKind, SymbolTable, VarId, VarKind};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::OnceLock;

pub mod render;
pub mod while_skeleton;

pub use render::{NameId, NameTable, RenderTemplate, TemplatePart};
pub use while_skeleton::WhileSkeleton;

/// Errors from skeleton construction.
#[derive(Debug, Clone, PartialEq)]
pub enum SkeletonError {
    /// The source failed to parse.
    Parse(spe_minic::ParseError),
    /// Scope analysis failed (e.g. undeclared variable).
    Sema(spe_minic::SemaError),
}

impl fmt::Display for SkeletonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkeletonError::Parse(e) => write!(f, "skeleton: {e}"),
            SkeletonError::Sema(e) => write!(f, "skeleton: {e}"),
        }
    }
}

impl std::error::Error for SkeletonError {}

impl From<spe_minic::ParseError> for SkeletonError {
    fn from(e: spe_minic::ParseError) -> Self {
        SkeletonError::Parse(e)
    }
}

impl From<spe_minic::SemaError> for SkeletonError {
    fn from(e: spe_minic::SemaError) -> Self {
        SkeletonError::Sema(e)
    }
}

/// Enumeration granularity (§4.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One enumeration unit per function; the function's parameters and
    /// top-level locals join the file globals in the unit's global pool.
    /// This is what the paper's evaluation uses.
    Intra,
    /// One unit for the whole translation unit; only file-scope variables
    /// form the global pool and every function acts as a scope.
    Inter,
}

/// One hole of the skeleton.
#[derive(Debug, Clone)]
pub struct Hole {
    /// The use site.
    pub occ: OccId,
    /// The variable originally filling the hole.
    pub var: VarId,
    /// The hole variable set `v_i`: visible, type-compatible variables.
    pub allowed: Vec<VarId>,
    /// Enclosing function index (`None` for global initializers).
    pub func: Option<usize>,
}

/// Holes of one variable type within one enumeration unit, with both
/// instance encodings.
#[derive(Debug, Clone)]
pub struct TypeGroup {
    /// The shared variable type.
    pub ty: Type,
    /// Hole indices into [`Skeleton::holes`], in source order. Hole `i`
    /// of the instances refers to `holes[i]`.
    pub holes: Vec<usize>,
    /// Variables usable somewhere in this group, sorted; instance
    /// variable ids index into this.
    pub vars: Vec<VarId>,
    /// Exact per-hole allowed sets.
    pub general: GeneralInstance,
    /// The paper's normal form. Variable pools: `flat_global_vars` then
    /// one pool per flat scope.
    pub flat: FlatInstance,
    /// Variables of the flat global pool, sorted.
    pub flat_global_vars: Vec<VarId>,
    /// Variables of each flat local scope, parallel to `flat.scopes()`.
    pub flat_scope_vars: Vec<Vec<VarId>>,
    /// Whether the flat encoding captures the exact allowed sets (true
    /// for two-level programs without declaration-order or shadowing
    /// effects; the flat view is an approximation otherwise).
    pub flat_exact: bool,
}

impl TypeGroup {
    /// Whether every hole of the group sees the group's whole variable
    /// set. Unconstrained groups are the Bell-number regime: their
    /// canonical space is plain `Rgs(n, k)` and indexes in closed form
    /// ([`spe_combinatorics::rgs_unrank`]); constrained groups need the
    /// prefix-count DP ([`spe_combinatorics::ConstrainedRgs`]) instead.
    /// The shard-native canonical gate in `spe-core` dispatches on this.
    pub fn is_unconstrained(&self) -> bool {
        let k = self.general.num_vars;
        self.general.allowed.iter().all(|a| a.len() == k)
    }

    /// Exact size of the group's canonical solution space (the number of
    /// valid partitions of its holes), without enumerating it: the
    /// closed form for unconstrained groups, the prefix-count DP
    /// otherwise. This is the per-group radix of the mixed-radix
    /// emission-index space that sharded canonical enumeration cuts.
    ///
    /// Returns `None` when counting would exceed `max_states` DP states
    /// ([`spe_combinatorics::ConstrainedRgs::try_total_within`]):
    /// adversarial constraint structures (e.g. dozens of interleaved
    /// declaration-order prefixes) can make the exact count
    /// exponentially stateful even when budget-capped enumeration stays
    /// cheap, and callers like the shard-native gate must detect that
    /// and fall back rather than hang. Unconstrained groups always
    /// answer. A `Some` here also bounds every later unrank on the same
    /// instance, since the full count visits every reachable DP state.
    pub fn canonical_space_size(&self, max_states: usize) -> Option<spe_bignum::BigUint> {
        if self.is_unconstrained() {
            Some(spe_combinatorics::partitions_at_most(
                self.general.num_holes() as u32,
                self.general.num_vars as u32,
            ))
        } else {
            spe_combinatorics::ConstrainedRgs::new(&self.general).try_total_within(max_states)
        }
    }
}

/// An enumeration unit: the holes of one function (intra) or of the whole
/// file (inter), split by type.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Function index for intra-procedural units (`None` = file-level
    /// unit or global initializers).
    pub func: Option<usize>,
    /// Type groups, ordered by type name.
    pub groups: Vec<TypeGroup>,
}

/// Aggregate skeleton statistics (the columns of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkeletonStats {
    /// Number of holes.
    pub holes: usize,
    /// Number of scopes (the scope-tree size, including global).
    pub scopes: usize,
    /// Number of function definitions.
    pub funcs: usize,
    /// Number of distinct variable types.
    pub types: usize,
    /// Average `|v_i|` over all holes (0.0 when there are no holes).
    pub vars_per_hole: f64,
}

/// A program viewed as a syntactic skeleton plus hole metadata.
#[derive(Debug, Clone)]
pub struct Skeleton {
    program: Program,
    table: SymbolTable,
    holes: Vec<Hole>,
    /// Interned candidate names; `var_names[v]` is the id of variable
    /// `VarId(v)`'s name (distinct variables may share one id under
    /// shadowing).
    names: NameTable,
    var_names: Vec<NameId>,
    /// Compiled render template, built lazily on first use and shared by
    /// all render calls thereafter.
    template: OnceLock<RenderTemplate>,
}

impl Skeleton {
    /// Parses and analyzes mini-C source into a skeleton.
    ///
    /// # Errors
    ///
    /// Returns [`SkeletonError`] on parse or scope-resolution failures.
    pub fn from_source(src: &str) -> Result<Skeleton, SkeletonError> {
        let program = spe_minic::parse(src)?;
        Skeleton::from_program(program)
    }

    /// Builds a skeleton from an already-parsed program.
    ///
    /// # Errors
    ///
    /// Returns [`SkeletonError::Sema`] when scope analysis fails.
    pub fn from_program(program: Program) -> Result<Skeleton, SkeletonError> {
        let table = spe_minic::analyze(&program)?;
        let holes = table
            .occurrences()
            .iter()
            .map(|occ| Hole {
                occ: occ.occ,
                var: occ.var,
                allowed: table.compatible_vars(occ),
                func: occ.func,
            })
            .collect();
        let mut names = NameTable::new();
        let var_names = table
            .vars()
            .iter()
            .map(|v| names.intern(&v.name))
            .collect();
        Ok(Skeleton {
            program,
            table,
            holes,
            names,
            var_names,
            template: OnceLock::new(),
        })
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The scope analysis results.
    pub fn table(&self) -> &SymbolTable {
        &self.table
    }

    /// All holes in source order.
    pub fn holes(&self) -> &[Hole] {
        &self.holes
    }

    /// Number of holes.
    pub fn num_holes(&self) -> usize {
        self.holes.len()
    }

    /// The occurrence id of every hole, in hole order: `out[h]` is the
    /// use site filled by `names[h]` in a variant. This is the binding
    /// contract an incremental oracle needs to splice a variant's names
    /// into a cached AST instead of reparsing the rendered source.
    pub fn hole_occs(&self) -> impl Iterator<Item = OccId> + '_ {
        self.holes.iter().map(|h| h.occ)
    }

    /// Statistics for the paper's Table 2.
    pub fn stats(&self) -> SkeletonStats {
        let mut types: Vec<String> = self.table.vars().iter().map(|v| v.ty.to_string()).collect();
        types.sort();
        types.dedup();
        let total_allowed: usize = self.holes.iter().map(|h| h.allowed.len()).sum();
        SkeletonStats {
            holes: self.holes.len(),
            scopes: self.table.scopes().len(),
            funcs: self.table.functions().len(),
            types: types.len(),
            vars_per_hole: if self.holes.is_empty() {
                0.0
            } else {
                total_allowed as f64 / self.holes.len() as f64
            },
        }
    }

    /// Splits the holes into enumeration units at the given granularity.
    pub fn units(&self, granularity: Granularity) -> Vec<Unit> {
        let mut by_unit: BTreeMap<Option<usize>, Vec<usize>> = BTreeMap::new();
        for (i, h) in self.holes.iter().enumerate() {
            let key = match granularity {
                Granularity::Intra => h.func,
                Granularity::Inter => None,
            };
            by_unit.entry(key).or_default().push(i);
        }
        by_unit
            .into_iter()
            .map(|(func, hole_ids)| Unit {
                func,
                groups: self.build_groups(&hole_ids, granularity),
            })
            .collect()
    }

    fn is_pool_global(&self, var: VarId, granularity: Granularity) -> bool {
        let v = self.table.var(var);
        match granularity {
            // Intra: file globals, parameters and function-top locals form
            // the unit's global pool v_f (§4.2's "function-wise
            // variables").
            Granularity::Intra => {
                v.kind == VarKind::Global
                    || matches!(self.table.scope(v.scope).kind, ScopeKind::Function(_))
            }
            Granularity::Inter => v.kind == VarKind::Global,
        }
    }

    fn build_groups(&self, hole_ids: &[usize], granularity: Granularity) -> Vec<TypeGroup> {
        let mut by_type: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for &hi in hole_ids {
            let ty = &self.table.var(self.holes[hi].var).ty;
            by_type.entry(ty.to_string()).or_default().push(hi);
        }
        let mut out = Vec::new();
        for (_, holes) in by_type {
            let ty = self.table.var(self.holes[holes[0]].var).ty.clone();
            // Variable universe of the group.
            let mut vars: Vec<VarId> = holes
                .iter()
                .flat_map(|&hi| self.holes[hi].allowed.iter().copied())
                .collect();
            vars.sort_unstable();
            vars.dedup();
            let var_index: HashMap<VarId, usize> =
                vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();

            // Exact instance.
            let allowed: Vec<Vec<usize>> = holes
                .iter()
                .map(|&hi| {
                    let mut a: Vec<usize> = self.holes[hi]
                        .allowed
                        .iter()
                        .map(|v| var_index[v])
                        .collect();
                    a.sort_unstable();
                    a
                })
                .collect();
            let general = GeneralInstance {
                allowed: allowed.clone(),
                num_vars: vars.len(),
            };

            // Flat (normal form) instance: pool split per granularity,
            // flat scopes keyed by the non-global portion of each hole's
            // allowed set.
            let global_pool: Vec<VarId> = vars
                .iter()
                .copied()
                .filter(|&v| self.is_pool_global(v, granularity))
                .collect();
            let mut scope_keys: Vec<Vec<VarId>> = Vec::new();
            let mut scope_holes: Vec<Vec<usize>> = Vec::new();
            let mut global_holes: Vec<usize> = Vec::new();
            let mut flat_exact = true;
            for (pos, &hi) in holes.iter().enumerate() {
                let h = &self.holes[hi];
                let locals: Vec<VarId> = h
                    .allowed
                    .iter()
                    .copied()
                    .filter(|&v| !self.is_pool_global(v, granularity))
                    .collect();
                // Exactness: the hole must see the whole global pool.
                let globals_seen = h.allowed.len() - locals.len();
                if globals_seen != global_pool.len() {
                    flat_exact = false;
                }
                if locals.is_empty() {
                    global_holes.push(pos);
                } else {
                    match scope_keys.iter().position(|k| *k == locals) {
                        Some(s) => scope_holes[s].push(pos),
                        None => {
                            scope_keys.push(locals);
                            scope_holes.push(vec![pos]);
                        }
                    }
                }
            }
            let scopes: Vec<FlatScope> = scope_keys
                .iter()
                .zip(&scope_holes)
                .map(|(k, hs)| FlatScope {
                    holes: hs.clone(),
                    vars: k.len(),
                })
                .collect();
            let flat = FlatInstance::new(global_holes, global_pool.len(), scopes);
            out.push(TypeGroup {
                ty,
                holes,
                vars,
                general,
                flat,
                flat_global_vars: global_pool,
                flat_scope_vars: scope_keys,
                flat_exact,
            });
        }
        out
    }

    /// The interned candidate-name table (all declared variable names).
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// The interned name of a variable.
    pub fn var_name(&self, var: VarId) -> NameId {
        self.var_names[var.0]
    }

    /// The compiled render template, built on first use by walking the
    /// program through the printer exactly once. Subsequent variant
    /// renders are pure segment/slot splices.
    pub fn template(&self) -> &RenderTemplate {
        self.template.get_or_init(|| {
            let hole_of_occ: HashMap<OccId, u32> = self
                .holes
                .iter()
                .enumerate()
                .map(|(i, h)| (h.occ, i as u32))
                .collect();
            // The table is frozen after construction, so every original
            // name is already interned; `lookup` cannot miss.
            RenderTemplate::from_pieces(
                spe_minic::print_template(&self.program),
                &hole_of_occ,
                |name| self.names.lookup(name).expect("declared names interned"),
            )
        })
    }

    /// Builds the flat rename vector realizing a paper/orbit solution of
    /// `group`: blocks drawing from the global pool get distinct global
    /// variables in block order; blocks of flat scope `s` get distinct
    /// variables of that scope. Each entry is `(hole index, chosen name)`,
    /// covering exactly the group's holes.
    ///
    /// # Panics
    ///
    /// Panics if the solution's blocks/pools are inconsistent with the
    /// group (more blocks in a pool than it has variables).
    pub fn rename_for_solution(
        &self,
        group: &TypeGroup,
        solution: &ScopedSolution,
    ) -> Vec<(u32, NameId)> {
        let mut next_global = 0usize;
        let mut next_local: Vec<usize> = vec![0; group.flat_scope_vars.len()];
        let mut rename = Vec::with_capacity(group.holes.len());
        for (block, pool) in solution.blocks.iter().zip(&solution.pools) {
            let var = match pool {
                PoolRef::Global => {
                    let v = group.flat_global_vars[next_global];
                    next_global += 1;
                    v
                }
                PoolRef::Local(s) => {
                    let v = group.flat_scope_vars[*s][next_local[*s]];
                    next_local[*s] += 1;
                    v
                }
            };
            let name = self.var_name(var);
            for &pos in block {
                rename.push((group.holes[pos] as u32, name));
            }
        }
        rename
    }

    /// Builds the flat rename vector realizing a canonical-partition
    /// solution (an RGS over the group's holes), using an SDR assignment.
    /// Returns `None` if the partition has no valid assignment.
    pub fn rename_for_rgs(&self, group: &TypeGroup, rgs: &[usize]) -> Option<Vec<(u32, NameId)>> {
        let assign = spe_combinatorics::assignment_for_rgs(&group.general, rgs)?;
        Some(
            rgs.iter()
                .enumerate()
                .map(|(pos, &block)| {
                    let var = group.vars[assign[block]];
                    (group.holes[pos] as u32, self.var_name(var))
                })
                .collect(),
        )
    }

    /// Renders the variant whose hole `h` is filled with `names[h]` into
    /// `out` (cleared first), via the compiled template. An empty slice
    /// renders the original program. The hot path of enumeration: with a
    /// reused buffer this performs no per-variant heap allocation.
    pub fn render_into(&self, names: &[NameId], out: &mut String) {
        self.template().render_into(names, &self.names, out);
    }

    /// [`render_into`](Self::render_into) allocating a fresh string.
    pub fn render(&self, names: &[NameId]) -> String {
        self.template().render(names, &self.names)
    }

    /// Converts a full hole-indexed rename vector into the legacy
    /// occurrence-keyed string map accepted by [`realize`](Self::realize).
    /// Only needed to cross-check the template path against the printer.
    pub fn rename_map(&self, names: &[NameId]) -> HashMap<OccId, String> {
        assert_eq!(names.len(), self.holes.len(), "one name per hole");
        self.holes
            .iter()
            .zip(names)
            .map(|(h, &n)| (h.occ, self.names.name(n).to_string()))
            .collect()
    }

    /// Emits source with the given use-site renaming by re-walking the
    /// AST — the legacy realization path, kept as the differential oracle
    /// for the template renderer. Maps from several groups can be merged
    /// into one before calling.
    pub fn realize(&self, rename: &HashMap<OccId, String>) -> String {
        spe_minic::print_renamed(&self.program, rename)
    }

    /// Emits the original source (identity realization).
    pub fn source(&self) -> String {
        spe_minic::print_program(&self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_bignum::BigUint;
    use spe_combinatorics::{canonical_count, paper_count};

    fn sk(src: &str) -> Skeleton {
        Skeleton::from_source(src).expect("skeleton builds")
    }

    /// Expands a group's rename pairs into a full hole-indexed name
    /// vector (uncovered holes keep their original names).
    fn apply(s: &Skeleton, pairs: &[(u32, NameId)]) -> Vec<NameId> {
        let mut names: Vec<NameId> = s.holes().iter().map(|h| s.var_name(h.var)).collect();
        for &(h, n) in pairs {
            names[h as usize] = n;
        }
        names
    }

    #[test]
    fn figure1_single_type_group() {
        let s = sk("int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }");
        assert_eq!(s.num_holes(), 7);
        let units = s.units(Granularity::Intra);
        assert_eq!(units.len(), 1);
        let g = &units[0].groups[0];
        // Both variables are function-top locals -> all holes global in
        // the flat view; 2 variables.
        assert_eq!(g.flat.global_vars(), 2);
        assert_eq!(g.flat.scopes().len(), 0);
        assert!(g.flat_exact);
        // Non-α-equivalent variants: {7 1} + {7 2} = 1 + 63 = 64.
        assert_eq!(paper_count(&g.flat).to_u64(), Some(64));
    }

    #[test]
    fn figure6_flat_structure_matches_paper() {
        let s = sk(r#"
            int main() {
                int a = 1, b = 0;
                if (a) {
                    int c = 3, d = 5;
                    b = c + d;
                }
                printf("%d", a);
                printf("%d", b);
                return 0;
            }
        "#);
        assert_eq!(s.num_holes(), 6);
        let units = s.units(Granularity::Intra);
        let g = &units[0].groups[0];
        assert_eq!(g.flat.global_vars(), 2, "a, b are function-wise");
        assert_eq!(g.flat.scopes().len(), 1);
        assert_eq!(g.flat.scopes()[0].vars, 2, "c, d local");
        assert_eq!(g.flat.scopes()[0].holes.len(), 3, "b = c + d");
        assert!(g.flat_exact);
    }

    #[test]
    fn type_groups_split_incompatible_types() {
        let s = sk("int a, b; double x, y; void f() { a = b; x = y; }");
        let units = s.units(Granularity::Intra);
        assert_eq!(units[0].groups.len(), 2);
        for g in &units[0].groups {
            assert_eq!(g.vars.len(), 2);
            assert_eq!(g.holes.len(), 2);
        }
    }

    #[test]
    fn pointers_form_their_own_group() {
        let s = sk("int a; int *p; void f() { a = *p; }");
        let units = s.units(Granularity::Intra);
        assert_eq!(units[0].groups.len(), 2);
    }

    #[test]
    fn intra_units_split_by_function() {
        let s = sk("int g; void f() { g = 1; } void h() { g = 2; }");
        let units = s.units(Granularity::Intra);
        assert_eq!(units.len(), 2);
        let inter = s.units(Granularity::Inter);
        assert_eq!(inter.len(), 1);
        assert_eq!(inter[0].groups[0].holes.len(), 2);
    }

    #[test]
    fn inter_treats_function_locals_as_scopes() {
        let s = sk("int g; void f() { int x; x = g; } void h() { int y; y = g; }");
        let inter = s.units(Granularity::Inter);
        let g = &inter[0].groups[0];
        assert_eq!(g.flat.global_vars(), 1);
        assert_eq!(g.flat.scopes().len(), 2, "each function is a scope");
        let intra = s.units(Granularity::Intra);
        assert_eq!(intra.len(), 2);
        for u in &intra {
            assert_eq!(u.groups[0].flat.scopes().len(), 0);
        }
    }

    #[test]
    fn intra_count_is_product_of_functions() {
        let s = sk("int g; void f() { g = g; } void h() { g = g; }");
        let units = s.units(Granularity::Intra);
        let product: BigUint = units
            .iter()
            .flat_map(|u| u.groups.iter())
            .map(|g| paper_count(&g.flat))
            .fold(BigUint::one(), |acc, c| &acc * &c);
        // Each function: 2 holes, 1 var -> 1 partition; product 1.
        assert_eq!(product.to_u64(), Some(1));
    }

    #[test]
    fn realization_produces_valid_programs() {
        let s = sk("int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }");
        let units = s.units(Granularity::Intra);
        let g = &units[0].groups[0];
        let (sols, _) = spe_combinatorics::paper_solutions(&g.flat, 1000);
        assert_eq!(sols.len(), 64);
        for sol in &sols {
            let names = apply(&s, &s.rename_for_solution(g, sol));
            let src = s.render(&names);
            let reparsed = Skeleton::from_source(&src)
                .unwrap_or_else(|e| panic!("invalid realization: {e}\n{src}"));
            assert_eq!(reparsed.num_holes(), 7);
        }
    }

    #[test]
    fn template_render_matches_legacy_realize() {
        let s = sk(r#"
            int main() {
                int a = 1, b = 0;
                if (a) {
                    int c = 3, d = 5;
                    b = c + d;
                }
                printf("%d", a);
                printf("%d", b);
                return 0;
            }
        "#);
        assert_eq!(s.template().num_slots(), s.num_holes());
        assert_eq!(s.render(&[]), s.source(), "identity render");
        let units = s.units(Granularity::Intra);
        let g = &units[0].groups[0];
        let (sols, _) = spe_combinatorics::paper_solutions(&g.flat, 1000);
        let mut buf = String::new();
        for sol in &sols {
            let names = apply(&s, &s.rename_for_solution(g, sol));
            s.render_into(&names, &mut buf);
            assert_eq!(buf, s.realize(&s.rename_map(&names)), "template drifted");
        }
    }

    #[test]
    fn realizations_are_distinct() {
        let s = sk("int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }");
        let units = s.units(Granularity::Intra);
        let g = &units[0].groups[0];
        let (sols, _) = spe_combinatorics::paper_solutions(&g.flat, 1000);
        let mut seen = std::collections::HashSet::new();
        for sol in &sols {
            let src = s.render(&apply(&s, &s.rename_for_solution(g, sol)));
            assert!(seen.insert(src.clone()), "duplicate realization:\n{src}");
        }
    }

    #[test]
    fn canonical_realization_respects_scoping() {
        let s = sk(r#"
            int main() {
                int a = 1, b = 0;
                if (a) {
                    int c = 3, d = 5;
                    b = c + d;
                }
                printf("%d", a);
                printf("%d", b);
                return 0;
            }
        "#);
        let units = s.units(Granularity::Intra);
        let g = &units[0].groups[0];
        let (rgss, _) = spe_combinatorics::canonical_solutions(&g.general, 100_000);
        assert_eq!(BigUint::from(rgss.len()), canonical_count(&g.general));
        for rgs in &rgss {
            let rename = s.rename_for_rgs(g, rgs).expect("valid partition");
            let src = s.render(&apply(&s, &rename));
            Skeleton::from_source(&src).unwrap_or_else(|e| panic!("scoping violated: {e}\n{src}"));
        }
    }

    #[test]
    fn declaration_order_reduces_allowed_sets() {
        let s = sk("void f() { int a; a = 1; int b; b = a; }");
        // Hole 0 (a = 1) can only be `a`; holes of `b = a` can be both.
        assert_eq!(s.holes()[0].allowed.len(), 1);
        assert_eq!(s.holes()[1].allowed.len(), 2);
        let units = s.units(Granularity::Intra);
        let g = &units[0].groups[0];
        assert!(
            !g.flat_exact,
            "declaration order makes the flat view approximate"
        );
    }

    #[test]
    fn stats_match_structure() {
        let s = sk(r#"
            int g;
            double d;
            void f(int p) {
                int x;
                if (p) {
                    int y = x;
                    g = y + p;
                }
            }
        "#);
        let st = s.stats();
        assert_eq!(st.funcs, 1);
        assert_eq!(st.types, 2);
        assert_eq!(st.holes, 5); // p (cond), x (init of y), g, y, p
        assert!(st.scopes >= 3); // global, function, if-block
        assert!(st.vars_per_hole > 1.0);
    }

    #[test]
    fn global_initializer_holes_have_no_function() {
        let s = sk("int a = 0; int *p = &a; int main() { return 0; }");
        assert_eq!(s.holes().len(), 1);
        assert_eq!(s.holes()[0].func, None);
        let units = s.units(Granularity::Intra);
        assert!(units.iter().any(|u| u.func.is_none()));
    }

    #[test]
    fn unconstrained_detection_and_space_size() {
        // Figure 1: both variables function-top — unconstrained, Bell
        // regime, closed-form size.
        let s = sk("int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }");
        let units = s.units(Granularity::Intra);
        let g = &units[0].groups[0];
        assert!(g.is_unconstrained());
        assert_eq!(
            g.canonical_space_size(usize::MAX),
            Some(spe_combinatorics::partitions_at_most(7, 2))
        );
        // Unconstrained groups never consult the DP, so any state budget
        // answers.
        assert!(g.canonical_space_size(0).is_some());
        // Declaration order constrains the first hole — DP-sized.
        let s = sk("void f() { int a; a = 1; int b; b = a; }");
        let units = s.units(Granularity::Intra);
        let g = &units[0].groups[0];
        assert!(!g.is_unconstrained());
        assert_eq!(
            g.canonical_space_size(usize::MAX),
            Some(canonical_count(&g.general))
        );
        // A starved state budget reports "too stateful to count".
        assert_eq!(g.canonical_space_size(0), None);
    }

    #[test]
    fn while_figure5_skeleton() {
        let w =
            WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b").expect("parses");
        assert_eq!(w.num_holes(), 6);
        assert_eq!(w.variables().len(), 2);
        // Paper: 2^6 = 64 naive, {6 1} + {6 2} = 32 non-α-equivalent.
        assert_eq!(w.instance().naive_count().to_u64(), Some(64));
        assert_eq!(paper_count(w.instance()).to_u64(), Some(32));
    }
}
