//! Template-compiled variant rendering.
//!
//! Realizing an enumerated variant used to re-walk the whole AST through
//! the printer and allocate an owned `String` per occurrence. This module
//! compiles the walk away: building a [`RenderTemplate`] runs the printer
//! **once per skeleton**, producing a flat sequence of static text
//! segments interleaved with hole slots; every candidate variable name is
//! interned into a [`NameTable`] of [`NameId`]s; and rendering one variant
//! is a segment/slot splice into a caller-provided reusable buffer
//! ([`RenderTemplate::render_into`]) — no AST traversal, no per-occurrence
//! `String` clones and no per-variant heap allocation.
//!
//! Output is byte-identical to the legacy
//! [`print_renamed`](spe_minic::print_renamed) path by construction: the
//! template's pieces come from the very same printer traversal.

use spe_minic::ast::OccId;
use spe_minic::TemplatePiece;
use std::collections::HashMap;

/// An interned variable name. The numeric value indexes the owning
/// [`NameTable`]; two equal ids always denote byte-identical names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NameId(pub u32);

/// Interning table for candidate variable names.
///
/// Built once per skeleton (every declared variable's name is interned at
/// construction), then shared read-only by any number of render workers.
///
/// # Examples
///
/// ```
/// use spe_skeleton::NameTable;
///
/// let mut t = NameTable::new();
/// let a = t.intern("a");
/// let b = t.intern("b");
/// assert_ne!(a, b);
/// assert_eq!(t.intern("a"), a); // duplicates collapse
/// assert_eq!(t.name(a), "a");
/// ```
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> NameTable {
        NameTable::default()
    }

    /// Interns `name`, returning the existing id when already present.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&i) = self.index.get(name) {
            return NameId(i);
        }
        let i = u32::try_from(self.names.len()).expect("fewer than 2^32 names");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        NameId(i)
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.index.get(name).map(|&i| NameId(i))
    }

    /// The string of an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One input piece for [`RenderTemplate::from_parts`] — the
/// backend-agnostic template alphabet (mini-C templates come from
/// [`spe_minic::print_template`], WHILE templates from
/// [`spe_while::print_template`]; both lower to this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplatePart {
    /// Literal text between holes (possibly empty).
    Text(String),
    /// A hole slot.
    Slot {
        /// Index of the hole (into the skeleton's source-ordered hole
        /// list) rendered at this position.
        hole: u32,
        /// The original program's (interned) name for this site.
        default: NameId,
    },
}

/// One hole slot of a compiled template.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Index of the hole (into the skeleton's source-ordered hole list)
    /// rendered at this position.
    hole: u32,
    /// The original program's name for this site — used when the rename
    /// vector is empty (identity rendering).
    default: NameId,
}

/// A skeleton's program compiled for repeated rendering: static text
/// segments interleaved with hole slots, in source order.
///
/// Layout: `segments.len() == slots.len() + 1`, and the rendered output is
/// `seg[0] name[0] seg[1] name[1] … seg[n]`. Static text is stored as byte
/// ranges into one flat buffer, so rendering touches exactly two
/// allocations total (the template and the caller's output buffer) no
/// matter how many variants are realized.
#[derive(Debug, Clone)]
pub struct RenderTemplate {
    /// All static text, concatenated.
    text: String,
    /// Byte ranges of the static segments within `text`.
    segments: Vec<(u32, u32)>,
    /// Hole slots between consecutive segments.
    slots: Vec<Slot>,
}

impl RenderTemplate {
    /// Compiles a template from backend-agnostic parts: static text
    /// interleaved with hole slots, in source order. Adjacent text parts
    /// merge; a slot with no preceding text gets an empty segment.
    pub fn from_parts(parts: impl IntoIterator<Item = TemplatePart>) -> RenderTemplate {
        let mut text = String::new();
        let mut segments = Vec::new();
        let mut slots = Vec::new();
        let mut seg_start = 0u32;
        for part in parts {
            match part {
                TemplatePart::Text(t) => text.push_str(&t),
                TemplatePart::Slot { hole, default } => {
                    let end = u32::try_from(text.len()).expect("template under 4 GiB");
                    segments.push((seg_start, end));
                    seg_start = end;
                    slots.push(Slot { hole, default });
                }
            }
        }
        segments.push((seg_start, u32::try_from(text.len()).expect("under 4 GiB")));
        RenderTemplate {
            text,
            segments,
            slots,
        }
    }

    /// Compiles a template from mini-C printer pieces.
    ///
    /// `hole_of_occ` maps a use-site occurrence to its hole index;
    /// occurrences without a hole (never produced by well-formed
    /// skeletons) are frozen into static text with their original names.
    /// `intern` resolves each occurrence's original name to an id.
    pub(crate) fn from_pieces(
        pieces: Vec<TemplatePiece>,
        hole_of_occ: &HashMap<OccId, u32>,
        mut intern: impl FnMut(&str) -> NameId,
    ) -> RenderTemplate {
        RenderTemplate::from_parts(pieces.into_iter().map(|piece| match piece {
            TemplatePiece::Text(t) => TemplatePart::Text(t),
            TemplatePiece::Occ { occ, name } => match hole_of_occ.get(&occ) {
                Some(&hole) => TemplatePart::Slot {
                    hole,
                    default: intern(&name),
                },
                None => TemplatePart::Text(name),
            },
        }))
    }

    /// Number of hole slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Renders one variant into `out` (clearing it first).
    ///
    /// `names[h]` is the name chosen for hole `h`; an **empty** slice
    /// renders the identity (every slot keeps its original name). `out` is
    /// reused across calls — after warm-up its capacity is stable and the
    /// render loop performs **zero heap allocation** per variant.
    ///
    /// # Panics
    ///
    /// Panics if `names` is non-empty but shorter than the skeleton's hole
    /// count, or if a name id is foreign to `table`.
    pub fn render_into(&self, names: &[NameId], table: &NameTable, out: &mut String) {
        out.clear();
        for (slot, &(s, e)) in self.slots.iter().zip(&self.segments) {
            out.push_str(&self.text[s as usize..e as usize]);
            let id = if names.is_empty() {
                slot.default
            } else {
                names[slot.hole as usize]
            };
            out.push_str(table.name(id));
        }
        let &(s, e) = self.segments.last().expect("segments = slots + 1");
        out.push_str(&self.text[s as usize..e as usize]);
    }

    /// Convenience wrapper allocating a fresh output string.
    pub fn render(&self, names: &[NameId], table: &NameTable) -> String {
        let mut out = String::with_capacity(self.text.len() + self.slots.len() * 4);
        self.render_into(names, table, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicating() {
        let mut t = NameTable::new();
        let ids: Vec<NameId> = ["x", "y", "x", "longer_name", "y"]
            .iter()
            .map(|n| t.intern(n))
            .collect();
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[1], ids[4]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.name(ids[3]), "longer_name");
        assert_eq!(t.lookup("y"), Some(ids[1]));
        assert_eq!(t.lookup("absent"), None);
    }

    #[test]
    fn template_splices_segments_and_slots() {
        let mut table = NameTable::new();
        let pieces = vec![
            TemplatePiece::Text("int f() { return ".into()),
            TemplatePiece::Occ {
                occ: OccId(0),
                name: "a".into(),
            },
            TemplatePiece::Text(" + ".into()),
            TemplatePiece::Occ {
                occ: OccId(1),
                name: "b".into(),
            },
            TemplatePiece::Text("; }".into()),
        ];
        let holes: HashMap<OccId, u32> = [(OccId(0), 0), (OccId(1), 1)].into();
        let tpl = RenderTemplate::from_pieces(pieces, &holes, |n| table.intern(n));
        assert_eq!(tpl.num_slots(), 2);
        let mut out = String::new();
        tpl.render_into(&[], &table, &mut out);
        assert_eq!(out, "int f() { return a + b; }");
        let b = table.lookup("b").expect("interned");
        let a = table.lookup("a").expect("interned");
        tpl.render_into(&[b, a], &table, &mut out);
        assert_eq!(out, "int f() { return b + a; }");
    }

    #[test]
    fn occ_without_hole_freezes_to_static_text() {
        let mut table = NameTable::new();
        let pieces = vec![
            TemplatePiece::Occ {
                occ: OccId(7),
                name: "ghost".into(),
            },
            TemplatePiece::Text(" = 0;".into()),
        ];
        let tpl = RenderTemplate::from_pieces(pieces, &HashMap::new(), |n| table.intern(n));
        assert_eq!(tpl.num_slots(), 0);
        let mut out = String::from("stale");
        tpl.render_into(&[], &table, &mut out);
        assert_eq!(out, "ghost = 0;");
    }

    #[test]
    fn render_into_reuses_the_buffer_without_reallocating() {
        let mut table = NameTable::new();
        let long = table.intern("somewhat_long_variable");
        let short = table.intern("v");
        let pieces = vec![
            TemplatePiece::Text("x = ".into()),
            TemplatePiece::Occ {
                occ: OccId(0),
                name: "v".into(),
            },
            TemplatePiece::Text(";".into()),
        ];
        let holes: HashMap<OccId, u32> = [(OccId(0), 0)].into();
        let tpl = RenderTemplate::from_pieces(pieces, &holes, |n| table.intern(n));
        let mut out = String::new();
        tpl.render_into(&[long], &table, &mut out); // warm-up sets capacity
        let cap = out.capacity();
        for _ in 0..100 {
            for id in [short, long] {
                tpl.render_into(&[id], &table, &mut out);
            }
        }
        assert_eq!(out.capacity(), cap, "buffer reallocated in the hot loop");
    }
}
