//! Regenerators for every table and figure of the SPE paper's evaluation.
//!
//! Each `table*`/`fig*` function reproduces one artifact of §5 with the
//! workspace's substitutes (synthetic corpus, simulated compilers; see
//! `DESIGN.md` §3 and §5). The binaries under `src/bin/` print them;
//! `bin/all` regenerates everything and emits the Markdown recorded in
//! `EXPERIMENTS.md`.

use spe_bignum::BigUint;
use spe_core::{naive_count, spe_count, Granularity, Skeleton};
use spe_corpus::{generate, seeds, stats, CorpusConfig, TestFile};
use spe_harness::coverage_run::figure9 as run_figure9;
use spe_harness::reduction::{reduce_findings, ReductionOptions};
use spe_harness::triage::{figure10 as run_figure10, table4 as run_table4};
use spe_harness::{run_campaign, run_campaign_parallel, CampaignConfig, CampaignReport, FindingKind};
use spe_report::{
    corrected_counts_table, figure8_bucket_of, figure8_buckets, CorrectedCounts, Histogram, Table,
};
use spe_simcc::bugs::GCC_VERSIONS;
use spe_simcc::{Compiler, CompilerId};

/// Scale of an experiment run: `quick` for tests/examples, `full` for the
/// recorded numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Corpus size for the counting experiments.
    pub corpus_files: usize,
    /// Per-file variant budget for campaigns.
    pub budget: usize,
    /// Files sampled for the coverage experiment.
    pub coverage_files: usize,
}

impl Scale {
    /// Small run for CI and examples (a few seconds).
    pub fn quick() -> Scale {
        Scale {
            corpus_files: 200,
            budget: 50,
            coverage_files: 20,
        }
    }

    /// The recorded configuration (about a minute).
    pub fn full() -> Scale {
        Scale {
            corpus_files: 2000,
            budget: 200,
            coverage_files: 100,
        }
    }
}

/// Per-file counting results shared by Table 1 and Figure 8.
pub struct CountingRun {
    /// Corpus files with their naive and SPE counts.
    pub per_file: Vec<(String, BigUint, BigUint)>,
}

/// Counts the naive and SPE (paper algorithm) enumeration sizes of every
/// file in the default corpus.
pub fn counting_run(scale: Scale) -> CountingRun {
    let files = generate(&CorpusConfig {
        files: scale.corpus_files,
        seed: 42,
    });
    let per_file = files
        .iter()
        .filter_map(|f| {
            let sk = Skeleton::from_source(&f.source).ok()?;
            Some((
                f.name.clone(),
                naive_count(&sk, Granularity::Intra),
                spe_count(&sk, Granularity::Intra),
            ))
        })
        .collect();
    CountingRun { per_file }
}

/// Table 1: total/average enumeration-set sizes, naive vs SPE, for the
/// whole corpus and for the 10K-thresholded subset.
pub fn table1(run: &CountingRun) -> Table {
    let threshold = BigUint::from(10_000u64);
    let mut t = Table::new(
        "Table 1: enumeration-set size reduction (naive vs SPE)",
        &[
            "Approach",
            "Total size",
            "Avg. size",
            "#Files",
            "Total (<=10K)",
            "Avg (<=10K)",
            "#Files (<=10K)",
        ],
    );
    let all_naive: BigUint = run.per_file.iter().map(|(_, n, _)| n).sum();
    let all_spe: BigUint = run.per_file.iter().map(|(_, _, s)| s).sum();
    let kept: Vec<&(String, BigUint, BigUint)> = run
        .per_file
        .iter()
        .filter(|(_, _, s)| *s <= threshold)
        .collect();
    let kept_naive: BigUint = kept.iter().map(|(_, n, _)| n).sum();
    let kept_spe: BigUint = kept.iter().map(|(_, _, s)| s).sum();
    let files = run.per_file.len().max(1) as u64;
    let kept_files = kept.len().max(1) as u64;
    let avg = |total: &BigUint, n: u64| total.divmod_word(n).0.to_scientific();
    t.row(&[
        "Naive".into(),
        all_naive.to_scientific(),
        avg(&all_naive, files),
        files.to_string(),
        kept_naive.to_scientific(),
        avg(&kept_naive, kept_files),
        kept_files.to_string(),
    ]);
    t.row(&[
        "Our".into(),
        all_spe.to_scientific(),
        avg(&all_spe, files),
        files.to_string(),
        kept_spe.to_scientific(),
        avg(&kept_spe, kept_files),
        kept_files.to_string(),
    ]);
    // Orders-of-magnitude reduction rows (the paper's headline numbers).
    let omd_all = all_naive.log10() - all_spe.log10();
    let omd_kept = kept_naive.log10() - kept_spe.log10();
    t.row(&[
        "Reduction".into(),
        format!("{omd_all:.1} orders"),
        String::new(),
        String::new(),
        format!("{omd_kept:.1} orders"),
        String::new(),
        String::new(),
    ]);
    t
}

/// Table 2: corpus characteristics (original vs 10K-thresholded subset).
pub fn table2(scale: Scale) -> Table {
    let files = generate(&CorpusConfig {
        files: scale.corpus_files,
        seed: 42,
    });
    let threshold = BigUint::from(10_000u64);
    let kept: Vec<TestFile> = files
        .iter()
        .filter(|f| {
            Skeleton::from_source(&f.source)
                .map(|sk| spe_count(&sk, Granularity::Intra) <= threshold)
                .unwrap_or(false)
        })
        .cloned()
        .collect();
    let all = stats::compute(&files);
    let enumerated = stats::compute(&kept);
    let mut t = Table::new(
        "Table 2: test-suite characteristics",
        &[
            "Test-Suite",
            "#Holes",
            "#Scopes",
            "#Funcs",
            "#Types",
            "#Vars/hole",
        ],
    );
    for (name, s) in [("Original", all), ("Enumerated", enumerated)] {
        t.row(&[
            name.into(),
            format!("{:.2}", s.holes),
            format!("{:.2}", s.scopes),
            format!("{:.2}", s.funcs),
            format!("{:.2}", s.types),
            format!("{:.2}", s.vars_per_hole),
        ]);
    }
    t
}

/// Figure 8(a): distribution of per-file variant counts; 8(b): average
/// eliminated fraction per naive bucket.
pub fn figure8(run: &CountingRun) -> (Histogram, Histogram) {
    let labels = figure8_buckets();
    let n = run.per_file.len().max(1) as f64;
    let mut naive_hist = vec![0.0; labels.len()];
    let mut spe_hist = vec![0.0; labels.len()];
    let mut reduction_sum = vec![0.0; labels.len()];
    let mut reduction_cnt = vec![0usize; labels.len()];
    for (_, naive, spe) in &run.per_file {
        naive_hist[figure8_bucket_of(naive)] += 1.0;
        spe_hist[figure8_bucket_of(spe)] += 1.0;
        let b = figure8_bucket_of(naive);
        // Eliminated fraction 1 - spe/naive via log-safe arithmetic.
        let frac = 1.0 - (spe.log10() - naive.log10()).exp10_clamped();
        reduction_sum[b] += frac.clamp(0.0, 1.0);
        reduction_cnt[b] += 1;
    }
    let mut a = Histogram::new(
        "Figure 8(a): distribution of per-file variant counts",
        labels.clone(),
    );
    a.series("Naive", naive_hist.iter().map(|c| c / n).collect());
    a.series("Our", spe_hist.iter().map(|c| c / n).collect());
    let mut b = Histogram::new(
        "Figure 8(b): avg fraction of variants eliminated per naive bucket",
        labels,
    );
    b.series(
        "Eliminated",
        reduction_sum
            .iter()
            .zip(&reduction_cnt)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect(),
    );
    (a, b)
}

trait Exp10Clamped {
    fn exp10_clamped(self) -> f64;
}

impl Exp10Clamped for f64 {
    /// `10^x` clamped into [0, 1] for x <= 0 (ratios of counts).
    fn exp10_clamped(self) -> f64 {
        if self >= 0.0 {
            1.0
        } else {
            10f64.powf(self)
        }
    }
}

/// Worker-pool width for campaign experiments: one worker per hardware
/// thread. Campaign reports are byte-identical for every worker count, so
/// this only affects wall-clock time.
pub fn campaign_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Installs environment-driven telemetry for an experiments binary:
/// a global recorder plus whatever `SPE_TRACE` / `SPE_METRICS` /
/// `SPE_PROGRESS` / `SPE_TELEMETRY` opt into. Keep the guard alive for
/// the whole run; dropping it flushes the trace and snapshot.
pub fn install_telemetry() -> spe_telemetry::Telemetry {
    spe_telemetry::Telemetry::install_from_env()
}

/// Runs `f` under a `phase.<name>` telemetry span and returns its result
/// with the elapsed wall clock — sourced from the very nanoseconds the
/// span records, so printed timings and exported traces always agree.
pub fn phase<T>(name: &str, f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let telemetry = spe_telemetry::global();
    let timer = spe_telemetry::Timer::always();
    let out = f();
    let nanos = timer.stop_nanos();
    telemetry.span(
        &format!("{}{name}", spe_telemetry::names::PHASE_PREFIX),
        "",
        nanos,
    );
    (out, std::time::Duration::from_nanos(nanos))
}

/// Prints a supervised [`spe_harness::orchestrate::Outcome`]'s absorbed
/// fault warnings (journal degradation, quarantined jobs) to stderr and
/// unwraps the status — experiments bins must never drop them silently.
pub fn surface_warnings(
    outcome: spe_harness::orchestrate::Outcome,
) -> spe_harness::checkpoint::CampaignStatus {
    for w in &outcome.warnings {
        eprintln!("spe-experiments: warning: {w}");
    }
    outcome.status
}

/// Shared harness of the campaign-scaling experiments: runs the serial
/// campaign over the seeds plus a generated corpus slice, re-runs it at
/// each worker count, asserts every parallel report byte-identical to
/// serial, and renders the timing table.
fn campaign_scaling_table(
    title: &str,
    corpus_seed: u64,
    scale: Scale,
    config: &CampaignConfig,
    worker_counts: &[usize],
) -> Table {
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig {
        files: scale.corpus_files / 4,
        seed: corpus_seed,
    }));
    let serial_start = std::time::Instant::now();
    let serial = run_campaign(&files, config);
    let serial_time = serial_start.elapsed();
    let mut t = Table::new(
        title,
        &[
            "Workers",
            "Wall time",
            "Speedup",
            "Findings",
            "Identical to serial",
        ],
    );
    t.row(&[
        "1 (serial)".to_string(),
        format!("{serial_time:.2?}"),
        "1.00x".to_string(),
        serial.findings.len().to_string(),
        "-".to_string(),
    ]);
    for &workers in worker_counts {
        let start = std::time::Instant::now();
        let parallel = run_campaign_parallel(&files, config, workers);
        let elapsed = start.elapsed();
        let speedup = serial_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        assert_eq!(
            parallel, serial,
            "{title}: {workers} workers diverged from serial"
        );
        t.row(&[
            workers.to_string(),
            format!("{elapsed:.2?}"),
            format!("{speedup:.2}x"),
            parallel.findings.len().to_string(),
            "yes".to_string(),
        ]);
    }
    t
}

/// Measures the parallel campaign against the serial baseline at several
/// worker counts, asserting byte-identical reports, and renders the
/// timings. The workload is the Table 4 trunk configuration.
pub fn parallel_speedup(scale: Scale, worker_counts: &[usize]) -> Table {
    let config = CampaignConfig {
        budget: scale.budget,
        check_wrong_code: true,
        ..Default::default()
    };
    campaign_scaling_table(
        "Parallel campaign scaling (byte-identical reports)",
        45,
        scale,
        &config,
        worker_counts,
    )
}

/// Campaign scaling under `Algorithm::Canonical`, where every corpus
/// skeleton with cheap exact prefix counts takes the shard-native
/// enumeration path — per-group spaces sized by the counting DP, no
/// solution list materialized (`DESIGN.md §8`). Same contract as
/// [`parallel_speedup`]: reports must stay byte-identical to the serial
/// campaign at every worker count, here with the native walk feeding
/// both sides.
pub fn canonical_native_speedup(scale: Scale, worker_counts: &[usize]) -> Table {
    let config = CampaignConfig {
        budget: scale.budget,
        algorithm: spe_core::Algorithm::Canonical,
        check_wrong_code: true,
        ..Default::default()
    };
    campaign_scaling_table(
        "Canonical shard-native campaign scaling (byte-identical reports)",
        46,
        scale,
        &config,
        worker_counts,
    )
}

/// Kill/resume demonstration on the Table-3 workload (`DESIGN.md` §9).
///
/// Runs the campaign with per-(file, shard) checkpoints into an
/// `spe-persist` journal, force-kills it roughly mid-stream
/// ([`spe_harness::CheckpointOptions::stop_after`] — the in-memory tail
/// since the last fsync'd checkpoint is dropped, exactly like a
/// `SIGKILL`), resumes from the journal, and **asserts** the resumed
/// report and its checkpointed reduction byte-identical to the
/// uninterrupted run. The two phases render as one table via the
/// partial-report merge [`Table::extend`].
pub fn resume_demo(scale: Scale, workers: usize) -> Table {
    use spe_harness::checkpoint::{
        compact_journal, reduce_findings_checkpointed, CampaignStatus, CheckpointOptions,
    };
    use spe_harness::orchestrate::{self, FaultPolicy};
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig {
        files: scale.corpus_files / 8,
        seed: 43,
    }));
    let config = CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(485), 0),
            Compiler::new(CompilerId::gcc(485), 3),
            Compiler::new(CompilerId::clang(360), 0),
            Compiler::new(CompilerId::clang(360), 3),
        ],
        budget: scale.budget,
        check_wrong_code: false,
        ..Default::default()
    };
    let reference = run_campaign_parallel(&files, &config, workers);
    let path = std::env::temp_dir().join(format!(
        "spe-resume-demo-{}-{workers}.journal",
        std::process::id()
    ));
    // Kill roughly mid-stream: half the per-variant work items.
    let total_variants = reference.variants_tested / config.compilers.len().max(1) as u64;
    let stop_after = (total_variants / 2).max(1);
    let headers = [
        "Phase",
        "Wall time",
        "Variants",
        "Findings",
        "Identical to uninterrupted",
    ];
    let mut t = Table::new(
        format!("Checkpointed campaign: kill after ~{stop_after} variants, resume ({workers} workers)"),
        &headers,
    );
    let (first, first_time) = phase("run_until_kill", || {
        orchestrate::campaign_checkpointed(
            &files,
            &config,
            workers,
            &path,
            &CheckpointOptions {
                every: 64,
                stop_after: Some(stop_after),
            },
            &FaultPolicy::default(),
        )
        .map(surface_warnings)
        .expect("journal is writable")
    });
    assert!(
        matches!(first, CampaignStatus::Interrupted),
        "the kill budget must preempt the campaign"
    );
    let journal_records = spe_persist::JournalReader::read(&path)
        .expect("journal readable")
        .records
        .len();
    t.row(&[
        "run until kill".to_string(),
        format!("{first_time:.2?}"),
        format!("~{stop_after} (journal: {journal_records} records)"),
        "(in journal)".to_string(),
        "-".to_string(),
    ]);
    // Compact the killed journal before resuming: superseded Progress
    // frames fold into one per job, and the resume below runs off the
    // compacted file — proving in one pass that compaction preserves
    // resume identity.
    let (stats, compact_time) = phase("compact", || compact_journal(&path).expect("compaction"));
    let mut compacted = Table::new("", &headers);
    compacted.row(&[
        "compact journal".to_string(),
        format!("{compact_time:.2?}"),
        format!(
            "{} -> {} records ({} -> {} bytes)",
            stats.frames_before, stats.frames_after, stats.bytes_before, stats.bytes_after
        ),
        "(in journal)".to_string(),
        "-".to_string(),
    ]);
    t.extend(&compacted);
    let (resumed, resume_time) = phase("resume", || {
        orchestrate::resume(
            &path,
            workers,
            &CheckpointOptions::default(),
            &FaultPolicy::default(),
        )
        .map(surface_warnings)
        .expect("journal resumes")
        .into_report()
        .expect("uninterrupted resume completes")
    });
    assert_eq!(resumed, reference, "resumed report diverged");
    // The resumed phase as a *partial report*, merged into one table.
    let mut rest = Table::new("", &headers);
    rest.row(&[
        "resume to completion".to_string(),
        format!("{resume_time:.2?}"),
        resumed.variants_tested.to_string(),
        resumed.findings.len().to_string(),
        "yes (asserted)".to_string(),
    ]);
    t.extend(&rest);
    // Reduction rides the same journal: kill-safe and byte-identical.
    let mut in_memory = reference.clone();
    reduce_campaign(&mut in_memory, &config);
    let mut journaled = resumed;
    let ((), reduce_time) = phase("reduce", || {
        reduce_findings_checkpointed(
            &mut journaled,
            &ReductionOptions {
                fuel: config.fuel,
                ..ReductionOptions::default()
            },
            workers,
            &path,
        )
        .expect("checkpointed reduction");
    });
    assert_eq!(journaled, in_memory, "checkpointed reduction diverged");
    let mut reduction = Table::new("", &headers);
    reduction.row(&[
        "checkpointed reduction".to_string(),
        format!("{reduce_time:.2?}"),
        "-".to_string(),
        format!("{} corrected", journaled.corrected_findings().count()),
        "yes (asserted)".to_string(),
    ]);
    t.extend(&reduction);
    std::fs::remove_file(&path).ok();
    t
}

/// Runs the post-campaign reduce/dedup stage over a report with the
/// campaign's own fuel, fanning reduction jobs across the worker pool.
pub fn reduce_campaign(report: &mut CampaignReport, config: &CampaignConfig) {
    reduce_findings(
        report,
        &ReductionOptions {
            fuel: config.fuel,
            ..ReductionOptions::default()
        },
        campaign_workers(),
    );
}

/// The reduce/dedup stage's corrected counts (Table-3-style root-cause
/// folding, derived from witness fingerprints instead of manual triage).
pub fn reduction_summary(report: &CampaignReport, families: &[&str]) -> Table {
    let rows: Vec<CorrectedCounts> = families
        .iter()
        .map(|family| {
            let findings: Vec<_> = report.for_family(family).collect();
            let reduced: Vec<f64> = findings
                .iter()
                .filter_map(|f| f.reduced.as_ref())
                .map(|r| r.shrink_ratio())
                .collect();
            let fingerprint_duplicates = findings
                .iter()
                .filter(|f| f.fingerprint_duplicate_of.is_some())
                .count();
            CorrectedCounts {
                family: family.to_string(),
                reports: findings.len(),
                bug_id_duplicates: findings.iter().filter(|f| f.duplicate_of.is_some()).count(),
                fingerprint_duplicates,
                corrected: findings.len() - fingerprint_duplicates,
                mean_shrink: if reduced.is_empty() {
                    1.0
                } else {
                    reduced.iter().sum::<f64>() / reduced.len() as f64
                },
            }
        })
        .collect();
    corrected_counts_table(
        "Corrected counts after reduction + fingerprint dedup",
        &rows,
    )
}

/// Table 3: crash signatures found on the stable releases, via an SPE
/// campaign of the corpus + seeds against gcc-sim 4.8.5 and clang-sim
/// 3.6. The returned report carries reduced witnesses and fingerprint
/// dedup annotations (render them with [`reduction_summary`]).
pub fn table3(scale: Scale) -> (Table, spe_harness::CampaignReport) {
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig {
        files: scale.corpus_files / 4,
        seed: 43,
    }));
    let config = CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(485), 0),
            Compiler::new(CompilerId::gcc(485), 3),
            Compiler::new(CompilerId::clang(360), 0),
            Compiler::new(CompilerId::clang(360), 3),
        ],
        budget: scale.budget,
        check_wrong_code: false,
        ..Default::default()
    };
    let mut report = run_campaign_parallel(&files, &config, campaign_workers());
    reduce_campaign(&mut report, &config);
    let mut t = Table::new(
        "Table 3: crash signatures found on stable releases",
        &["Compiler", "Signature"],
    );
    for f in report.primary_findings() {
        if f.kind == FindingKind::Crash {
            t.row(&[f.compiler.to_string(), f.signature.clone()]);
        }
    }
    (t, report)
}

/// Table 4: trunk campaign overview (reported/fixed/duplicate and bug
/// classification), via an SPE campaign against the trunk profiles. The
/// returned report carries reduced witnesses and fingerprint dedup
/// annotations (render them with [`reduction_summary`]).
pub fn table4(scale: Scale) -> (Table, spe_harness::CampaignReport) {
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig {
        files: scale.corpus_files / 2,
        seed: 44,
    }));
    let config = CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 1),
            Compiler::new(CompilerId::gcc(700), 2),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 0),
            Compiler::new(CompilerId::clang(390), 2),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: scale.budget,
        check_wrong_code: true,
        ..Default::default()
    };
    let mut report = run_campaign_parallel(&files, &config, campaign_workers());
    reduce_campaign(&mut report, &config);
    let rows = run_table4(&report, &["gcc-sim", "clang-sim"]);
    let mut t = Table::new(
        "Table 4: trunk campaign overview",
        &[
            "Compiler",
            "Reported",
            "Fixed",
            "Duplicate",
            "Invalid",
            "Reopened",
            "Crash",
            "Wrong code",
            "Performance",
        ],
    );
    for r in rows {
        t.row(&[
            r.family.clone(),
            r.reported.to_string(),
            r.fixed.to_string(),
            r.duplicate.to_string(),
            r.invalid.to_string(),
            r.reopened.to_string(),
            r.crash.to_string(),
            r.wrong_code.to_string(),
            r.performance.to_string(),
        ]);
    }
    (t, report)
}

/// Figure 9: coverage improvements of SPE vs PM-10/20/30.
pub fn figure9(scale: Scale) -> Histogram {
    let files = generate(&CorpusConfig {
        files: scale.coverage_files,
        seed: 45,
    });
    let fig = run_figure9(&files, scale.budget.min(40), &[10, 20, 30], 7);
    let mut h = Histogram::new(
        format!(
            "Figure 9: coverage improvement over baseline ({:.1}% functions, {:.1}% lines)",
            fig.baseline.function, fig.baseline.line
        ),
        vec!["Function".into(), "Line".into()],
    );
    for (x, p) in &fig.pm {
        h.series(format!("PM-{x}"), vec![p.function, p.line]);
    }
    h.series("SPE", vec![fig.spe.function, fig.spe.line]);
    h
}

/// Figure 10: characteristics of the gcc-sim trunk bugs from the Table 4
/// campaign.
pub fn figure10(report: &spe_harness::CampaignReport) -> Vec<Histogram> {
    let fig = run_figure10(report, "gcc-sim", GCC_VERSIONS);
    let mk = |title: &str, data: &[(String, usize, usize)]| {
        let mut h = Histogram::new(
            title.to_string(),
            data.iter().map(|(l, _, _)| l.clone()).collect(),
        );
        h.series("Reported", data.iter().map(|(_, r, _)| *r as f64).collect());
        h.series("Fixed", data.iter().map(|(_, _, f)| *f as f64).collect());
        h
    };
    vec![
        mk("Figure 10(a): bug priorities", &fig.priorities),
        mk(
            "Figure 10(b): affected optimization levels",
            &fig.opt_levels,
        ),
        mk("Figure 10(c): affected gcc-sim versions", &fig.versions),
        mk("Figure 10(d): affected components", &fig.components),
    ]
}

/// §5.3 generality: a WHILE-language campaign against the CompCert-like
/// and Scala-like profiles. Returns (compiler label, crash signatures,
/// wrong-code findings) per profile.
pub fn generality() -> Table {
    use spe_combinatorics::Rgs;
    use spe_skeleton::WhileSkeleton;
    use spe_while::compiler::{compile, execute, BugProfile, Options};
    use spe_while::{interpret, Outcome};

    let programs = [
        "a := 1; b := 2; c := (a + b) - (a + b); d := c",
        "a := 3; b := 1; while a do a := a - b",
        "y := 0; x := y; while x < 3 do begin s := s + 1; x := x + 1 end",
        "p := 2; q := 3; r := p * q; if r < 10 then r := r + 1 else skip",
    ];
    let mut t = Table::new(
        "Generality (paper §5.3): WHILE-language campaigns",
        &[
            "Profile",
            "Crash signatures",
            "Wrong-code findings",
            "Variants",
        ],
    );
    for (label, profile) in [
        ("compcert-sim", BugProfile::CompCertSim),
        ("scala-sim", BugProfile::ScalaSim),
    ] {
        let mut crashes = std::collections::BTreeSet::new();
        let mut wrong = 0usize;
        let mut variants = 0usize;
        let mut names = Vec::new();
        let mut rendered = String::new();
        for src in &programs {
            let Ok(sk) = WhileSkeleton::from_source(src) else {
                continue;
            };
            let k = sk.variables().len();
            for rgs in Rgs::new(sk.num_holes(), k) {
                // Template-compiled splice into reused buffers; variants
                // needing execution are re-parsed from the rendered text.
                sk.render_rgs_into(&rgs, &mut names, &mut rendered);
                let variant = spe_while::parse(&rendered).expect("rendered variant parses");
                variants += 1;
                let reference = match interpret(&variant, 20_000) {
                    Ok(Outcome::Finished(s)) => s,
                    _ => continue, // timeout or overflow: skip
                };
                for opt in [1u8, 2] {
                    match compile(
                        &variant,
                        Options {
                            opt_level: opt,
                            profile,
                        },
                    ) {
                        Err(ice) => {
                            crashes.insert(format!("{}: {}", ice.pass, ice.message));
                        }
                        Ok(compiled) => {
                            if let Ok(Outcome::Finished(out)) = execute(&compiled, 100_000) {
                                if out != reference {
                                    wrong += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        t.row(&[
            label.into(),
            crashes.len().to_string(),
            wrong.to_string(),
            variants.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shows_reduction() {
        let run = counting_run(Scale {
            corpus_files: 120,
            budget: 10,
            coverage_files: 5,
        });
        let t = table1(&run);
        assert_eq!(t.rows.len(), 3);
        // SPE total must be strictly smaller than naive total.
        let all_naive: BigUint = run.per_file.iter().map(|(_, n, _)| n).sum();
        let all_spe: BigUint = run.per_file.iter().map(|(_, _, s)| s).sum();
        assert!(all_spe < all_naive);
        // The thresholded reduction should span multiple orders of
        // magnitude, as in the paper.
        assert!(all_naive.log10() - all_spe.log10() > 3.0);
    }

    #[test]
    fn figure8_fractions_sum_to_one() {
        let run = counting_run(Scale {
            corpus_files: 80,
            budget: 10,
            coverage_files: 5,
        });
        let (a, _b) = figure8(&run);
        for (_, series) in &a.series {
            let sum: f64 = series.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        }
    }

    #[test]
    fn table4_carries_reduced_witnesses_and_corrected_counts() {
        let (t, report) = table4(Scale {
            corpus_files: 60,
            budget: 30,
            coverage_files: 5,
        });
        assert!(!t.rows.is_empty());
        // Every primary finding carries a reduced witness with a
        // fingerprint, and the witness never grew.
        for f in report.primary_findings() {
            let reduced = f
                .reduced
                .as_ref()
                .unwrap_or_else(|| panic!("{} lacks a reduced witness", f.signature));
            assert!(reduced.reduced_bytes <= reduced.original_bytes);
            assert_eq!(reduced.fingerprint.len(), 16, "hex fingerprint");
        }
        // The fingerprint pass folds at least one distinct-signature pair
        // (the same trunk bug surfaces at several optimization levels).
        assert!(
            report.fingerprint_duplicates() >= 1,
            "no fingerprint merges in the trunk campaign"
        );
        let summary = reduction_summary(&report, &["gcc-sim", "clang-sim"]);
        let rendered = summary.render();
        assert!(rendered.contains("Dup (fingerprint)"), "{rendered}");
    }

    #[test]
    fn generality_finds_both_profiles_bugs() {
        let t = generality();
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let crashes: usize = row[1].parse().expect("count");
            assert!(crashes >= 1, "profile {} found no crashes", row[0]);
        }
    }
}
