//! Regenerates the paper's Figure 9 (coverage improvements).
fn main() {
    println!(
        "{}",
        spe_experiments::figure9(spe_experiments::Scale::full()).render(40)
    );
}
