//! Regenerates the paper's Figure 9 (coverage improvements).
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    println!(
        "{}",
        spe_experiments::figure9(spe_experiments::Scale::full()).render(40)
    );
}
