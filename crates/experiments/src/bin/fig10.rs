//! Regenerates the paper's Figure 10 (bug characteristics).
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    let (_, report) = spe_experiments::table4(spe_experiments::Scale::full());
    for h in spe_experiments::figure10(&report) {
        println!("{}", h.render(40));
    }
}
