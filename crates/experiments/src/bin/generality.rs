//! Regenerates the §5.3 generality results (WHILE-language campaigns).
fn main() {
    println!("{}", spe_experiments::generality().render());
}
