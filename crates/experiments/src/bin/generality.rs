//! Regenerates the §5.3 generality results (WHILE-language campaigns).
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    println!("{}", spe_experiments::generality().render());
}
