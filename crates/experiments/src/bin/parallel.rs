//! Parallel campaign scaling: serial baseline vs 1/2/4/N-worker runs of
//! the trunk campaign, with a byte-identical-report check at every width.
fn main() {
    let workers = spe_experiments::campaign_workers();
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&workers) {
        counts.push(workers);
    }
    println!(
        "{}",
        spe_experiments::parallel_speedup(spe_experiments::Scale::quick(), &counts).render()
    );
}
