//! Parallel campaign scaling: serial baseline vs 1/2/4/N-worker runs of
//! the trunk campaign, with a byte-identical-report check at every width
//! — first under the default (paper) algorithm, then under the canonical
//! algorithm, where every in-mask-width skeleton takes the shard-native
//! enumeration path (no per-group solution list materialized; DESIGN §8).
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    let workers = spe_experiments::campaign_workers();
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&workers) {
        counts.push(workers);
    }
    println!(
        "{}",
        spe_experiments::parallel_speedup(spe_experiments::Scale::quick(), &counts).render()
    );
    println!(
        "{}",
        spe_experiments::canonical_native_speedup(spe_experiments::Scale::quick(), &counts)
            .render()
    );
}
