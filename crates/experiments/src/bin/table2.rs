//! Regenerates the paper's Table 2 (test-suite characteristics).
fn main() {
    println!(
        "{}",
        spe_experiments::table2(spe_experiments::Scale::full()).render()
    );
}
