//! Regenerates the paper's Table 2 (test-suite characteristics).
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    println!(
        "{}",
        spe_experiments::table2(spe_experiments::Scale::full()).render()
    );
}
