//! Kill/resume demonstration (`DESIGN.md` §9): runs the Table-3 workload
//! with journal checkpoints, force-kills it mid-campaign, resumes from
//! the journal, and asserts the merged report — campaign and reduction
//! stage alike — byte-identical to an uninterrupted run.
fn main() {
    let workers = spe_experiments::campaign_workers();
    println!(
        "{}",
        spe_experiments::resume_demo(spe_experiments::Scale::quick(), workers).render()
    );
}
