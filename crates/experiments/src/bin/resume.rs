//! Kill/resume demonstration (`DESIGN.md` §9): runs the Table-3 workload
//! with journal checkpoints, force-kills it mid-campaign, resumes from
//! the journal, and asserts the merged report — campaign and reduction
//! stage alike — byte-identical to an uninterrupted run.
//!
//! Telemetry is environment-driven (`SPE_TRACE`, `SPE_METRICS`,
//! `SPE_PROGRESS`, `SPE_TELEMETRY`); the per-phase wall-clock lines at
//! the end are read back from the recorded `phase.*` spans.
fn main() {
    let telemetry = spe_experiments::install_telemetry();
    let workers = spe_experiments::campaign_workers();
    println!(
        "{}",
        spe_experiments::resume_demo(spe_experiments::Scale::quick(), workers).render()
    );
    for (phase, ms) in telemetry.phases() {
        println!("phase {phase}: {ms:.1} ms");
    }
}
