//! CI validator for exported telemetry artifacts.
//!
//! `telemetry_check <trace.jsonl> <metrics.prom>` parses every line of
//! the JSONL trace with the strict [`spe_telemetry::jsonl::parse_line`]
//! parser and requires the Prometheus snapshot to be non-empty and to
//! carry at least one `spe_`-prefixed sample; any violation exits
//! nonzero with the offending line. CI runs an instrumented campaign
//! with `SPE_TRACE`/`SPE_METRICS` set and then this check over the two
//! files it produced.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, metrics_path] = args.as_slice() else {
        eprintln!("usage: telemetry_check <trace.jsonl> <metrics.prom>");
        return ExitCode::FAILURE;
    };
    let trace = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("telemetry_check: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut records = 0usize;
    let mut spans = 0usize;
    for (i, line) in trace.lines().enumerate() {
        match spe_telemetry::jsonl::parse_line(line) {
            Ok(r) => {
                records += 1;
                if r.kind == "span" {
                    spans += 1;
                }
            }
            Err(e) => {
                eprintln!("telemetry_check: {trace_path}:{}: {e}: {line}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    if records == 0 {
        eprintln!("telemetry_check: {trace_path} is empty — no trace records");
        return ExitCode::FAILURE;
    }
    let metrics = match std::fs::read_to_string(metrics_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("telemetry_check: cannot read {metrics_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !metrics.lines().any(|l| l.starts_with("spe_")) {
        eprintln!("telemetry_check: {metrics_path} has no spe_-prefixed samples");
        return ExitCode::FAILURE;
    }
    println!(
        "telemetry_check: OK ({records} trace records, {spans} spans, {} metrics lines)",
        metrics.lines().count()
    );
    ExitCode::SUCCESS
}
