//! Regenerates the paper's Table 1 (search-space reduction).
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    let scale = spe_experiments::Scale::full();
    let run = spe_experiments::counting_run(scale);
    println!("{}", spe_experiments::table1(&run).render());
}
