//! Regenerates the paper's Figure 8 (variant-count distributions).
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    let run = spe_experiments::counting_run(spe_experiments::Scale::full());
    let (a, b) = spe_experiments::figure8(&run);
    println!("{}", a.render(40));
    println!("{}", b.render(40));
}
