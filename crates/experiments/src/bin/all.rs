//! Regenerates every table and figure; with `--markdown` the output is
//! the body recorded in `EXPERIMENTS.md`.
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    let markdown = std::env::args().any(|a| a == "--markdown");
    let scale = spe_experiments::Scale::full();
    let run = spe_experiments::counting_run(scale);
    let t1 = spe_experiments::table1(&run);
    let t2 = spe_experiments::table2(scale);
    let (f8a, f8b) = spe_experiments::figure8(&run);
    let (t3, stable_report) = spe_experiments::table3(scale);
    let (t4, trunk_report) = spe_experiments::table4(scale);
    let families = ["gcc-sim", "clang-sim"];
    let t3_corrected = spe_experiments::reduction_summary(&stable_report, &families);
    let t4_corrected = spe_experiments::reduction_summary(&trunk_report, &families);
    let f9 = spe_experiments::figure9(scale);
    let f10 = spe_experiments::figure10(&trunk_report);
    let gen = spe_experiments::generality();
    if markdown {
        println!("{}", t1.render_markdown());
        println!("{}", t2.render_markdown());
        println!("```text\n{}\n{}```\n", f8a.render(40), f8b.render(40));
        println!("{}", t3.render_markdown());
        println!("{}", t3_corrected.render_markdown());
        println!("{}", t4.render_markdown());
        println!("{}", t4_corrected.render_markdown());
        println!("```text\n{}```\n", f9.render(40));
        for h in &f10 {
            println!("```text\n{}```\n", h.render(40));
        }
        println!("{}", gen.render_markdown());
    } else {
        println!("{}", t1.render());
        println!("{}", t2.render());
        println!("{}", f8a.render(40));
        println!("{}", f8b.render(40));
        println!("{}", t3.render());
        println!("{}", t3_corrected.render());
        println!("{}", t4.render());
        println!("{}", t4_corrected.render());
        println!("{}", f9.render(40));
        for h in &f10 {
            println!("{}", h.render(40));
        }
        println!("{}", gen.render());
    }
}
