//! Regenerates the paper's Table 4 (trunk campaign overview).
fn main() {
    let (t, _) = spe_experiments::table4(spe_experiments::Scale::full());
    println!("{}", t.render());
}
