//! Regenerates the paper's Table 4 (trunk campaign overview), plus the
//! reduce/dedup stage's corrected counts.
fn main() {
    let _telemetry = spe_experiments::install_telemetry();
    let (t, report) = spe_experiments::table4(spe_experiments::Scale::full());
    println!("{}", t.render());
    println!(
        "{}",
        spe_experiments::reduction_summary(&report, &["gcc-sim", "clang-sim"]).render()
    );
}
