//! Multi-host fleet demonstration (`DESIGN.md` §14): runs one campaign
//! as a 3-host fleet — each host a **separate OS process** re-invoking
//! this binary with `--host <id>`, on a different worker count — then
//! kills host 1 mid-slice, resumes it in a fresh process on yet another
//! worker count, compacts host 0's journal, merges the three host
//! journals, and **asserts** the merged report byte-identical to an
//! uninterrupted in-process single-host run.
//!
//! Parent and children never exchange campaign state: each process
//! derives the identical corpus, configuration, and [`FleetPlan`] from
//! the same deterministic functions, exactly as real fleet hosts would
//! derive them from a shared config file.

use spe_corpus::{generate, seeds, CorpusConfig, TestFile};
use spe_harness::checkpoint::{compact_journal, CampaignStatus, CheckpointOptions};
use spe_harness::fleet::{merge_journals_detailed, resume_host, run_host, FleetPlan};
use spe_harness::{run_campaign_parallel, CampaignConfig};
use spe_report::{fleet_provenance_table, FleetHostRow};
use spe_simcc::{Compiler, CompilerId};
use std::path::PathBuf;
use std::process::Command;

/// Child exit code for an honored `--stop-after` kill.
const EXIT_INTERRUPTED: i32 = 3;
const N_HOSTS: usize = 3;
const SHARDS_PER_FILE: usize = 4;
const FLEET_ID: u64 = 0x5e1f_00d5;

fn corpus() -> Vec<TestFile> {
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig { files: 8, seed: 47 }));
    files
}

fn config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(485), 0),
            Compiler::new(CompilerId::gcc(485), 3),
            Compiler::new(CompilerId::clang(360), 0),
            Compiler::new(CompilerId::clang(360), 3),
        ],
        budget: 32,
        check_wrong_code: false,
        ..Default::default()
    }
}

fn plan() -> FleetPlan {
    FleetPlan::new(FLEET_ID, N_HOSTS, SHARDS_PER_FILE)
}

fn journal_path(host: usize) -> PathBuf {
    std::env::temp_dir().join(format!("spe-fleet-demo-{}-host{host}.journal", parent_pid()))
}

/// Children receive the parent's pid so every process of one demo run
/// names the same journal files.
fn parent_pid() -> u32 {
    std::env::var("SPE_FLEET_DEMO_PID")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(std::process::id)
}

/// `--host <id>` child mode: run (or `--resume`) one host's slice.
fn child(args: &[String]) -> ! {
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args[i + 1].clone())
    };
    let host: usize = get("--host").expect("--host <id>").parse().expect("host id");
    let workers: usize = get("--workers").map_or(1, |w| w.parse().expect("worker count"));
    let options = CheckpointOptions {
        every: 16,
        stop_after: get("--stop-after").map(|n| n.parse().expect("kill budget")),
    };
    let status = if args.iter().any(|a| a == "--resume") {
        resume_host(journal_path(host), workers, &options)
    } else {
        run_host(
            &plan(),
            host,
            &corpus(),
            &config(),
            workers,
            journal_path(host),
            &options,
        )
    }
    .unwrap_or_else(|e| {
        eprintln!("fleet demo host {host}: {e}");
        std::process::exit(1);
    });
    match status {
        CampaignStatus::Complete(_) => std::process::exit(0),
        CampaignStatus::Interrupted => std::process::exit(EXIT_INTERRUPTED),
    }
}

/// Spawns one host process and returns its exit code.
fn spawn_host(host: usize, workers: usize, extra: &[&str]) -> i32 {
    let exe = std::env::current_exe().expect("own path");
    let status = Command::new(exe)
        .args(["--host", &host.to_string(), "--workers", &workers.to_string()])
        .args(extra)
        .env("SPE_FLEET_DEMO_PID", std::process::id().to_string())
        .status()
        .expect("host process spawns");
    status.code().unwrap_or(-1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--host") {
        child(&args);
    }
    let telemetry = spe_experiments::install_telemetry();
    let files = corpus();
    let cfg = config();
    let plan = plan();
    println!(
        "fleet {FLEET_ID:#x}: {} files x {SHARDS_PER_FILE} shards = {} jobs over {N_HOSTS} hosts",
        files.len(),
        plan.job_count(files.len())
    );

    // The identity reference: one uninterrupted in-process run whose
    // worker count equals the fleet's shards_per_file.
    let (reference, _) = spe_experiments::phase("reference", || {
        run_campaign_parallel(&files, &cfg, SHARDS_PER_FILE)
    });

    // Hosts 0 and 2 run to completion on different worker counts;
    // host 1 is killed mid-slice by a one-variant stop budget.
    let ((), _) = spe_experiments::phase("fleet_run", || {
        assert_eq!(spawn_host(0, 2, &[]), 0, "host 0 must complete");
        assert_eq!(
            spawn_host(1, 1, &["--stop-after", "1"]),
            EXIT_INTERRUPTED,
            "host 1 must be preempted by its kill budget"
        );
        assert_eq!(spawn_host(2, 3, &[]), 0, "host 2 must complete");
    });
    println!("host 1 killed mid-slice (exit {EXIT_INTERRUPTED}); resuming on 4 workers");

    // The dead host resumes in a fresh process on a different worker
    // count — the journal alone carries its identity and progress.
    let ((), _) = spe_experiments::phase("resume_host", || {
        assert_eq!(
            spawn_host(1, 4, &["--resume"]),
            0,
            "resumed host 1 must complete"
        );
    });

    // Compaction must preserve the fleet manifest verbatim; merging off
    // a compacted journal proves it in-pass.
    let (stats, _) = spe_experiments::phase("compact", || {
        compact_journal(journal_path(0)).expect("compaction")
    });
    println!(
        "compacted host 0 journal: {} -> {} frames",
        stats.frames_before, stats.frames_after
    );

    let paths: Vec<PathBuf> = (0..N_HOSTS).map(journal_path).collect();
    let (merged, _) = spe_experiments::phase("merge", || {
        merge_journals_detailed(&paths).expect("host journals merge")
    });
    assert_eq!(
        merged.report, reference,
        "merged fleet report diverged from the uninterrupted run"
    );
    println!(
        "merged report: {} variants, {} findings — identical to uninterrupted run (asserted)",
        merged.report.variants_tested,
        merged.report.findings.len()
    );

    let rows: Vec<FleetHostRow> = merged
        .hosts
        .iter()
        .map(|h| FleetHostRow {
            host_id: h.host_id,
            journal: h
                .path
                .file_name()
                .map_or_else(|| h.path.display().to_string(), |n| {
                    n.to_string_lossy().into_owned()
                }),
            jobs_start: h.jobs.start,
            jobs_end: h.jobs.end,
            frames: h.frames,
            variants_tested: h.variants_tested,
            candidates: h.candidates,
        })
        .collect();
    println!(
        "{}",
        fleet_provenance_table(
            format!(
                "Fleet {:#x}: {} hosts, kill/resume on host 1, compacted host 0",
                merged.fleet_id, merged.n_hosts
            ),
            &rows
        )
        .render()
    );
    for p in &paths {
        std::fs::remove_file(p).ok();
    }
    for (phase, ms) in telemetry.phases() {
        println!("phase {phase}: {ms:.1} ms");
    }
}
