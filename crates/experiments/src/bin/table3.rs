//! Regenerates the paper's Table 3 (stable-release crash signatures).
fn main() {
    println!(
        "{}",
        spe_experiments::table3(spe_experiments::Scale::full()).render()
    );
}
