//! Resume memory is bounded by **live job state**, not journal size:
//! the resume path replays through the streaming [`JournalIter`], so a
//! multi-thousand-frame journal must replay in a small, flat footprint,
//! while materializing the same journal through [`JournalReader::read`]
//! necessarily allocates it whole.
//!
//! One test, alone in its binary: the measurement uses a process-global
//! counting allocator, and sibling tests would pollute the peaks.

use spe::harness::checkpoint::{
    resume_campaign, run_campaign_checkpointed, CampaignStatus, CheckpointOptions,
};
use spe::harness::CampaignConfig;
use spe::persist::{JournalIter, JournalReader};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator with live/peak byte counters.
struct Counting;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(p, layout)
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

/// Runs `f` and returns its result plus the peak allocation (in bytes)
/// above the live baseline at entry.
fn measure<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let baseline = CURRENT.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let result = f();
    (result, PEAK.load(Ordering::Relaxed).saturating_sub(baseline))
}

/// A straight-line program with eight candidate variables feeding many
/// holes: its canonical variant space dwarfs any budget this test uses,
/// so the checkpointed run emits exactly `budget` variants.
const WIDE_SOURCE: &str = "int main() {
    int a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6, h = 7;
    a = b + c;
    d = e + f;
    g = h + a;
    b = c + d;
    e = f + g;
    h = a + b;
    c = d + e;
    f = g + h;
    return a + b;
}
";

#[test]
fn streaming_resume_stays_flat_over_a_multi_thousand_frame_journal() {
    let files = vec![spe::corpus::TestFile {
        name: "wide.c".into(),
        source: WIDE_SOURCE.into(),
    }];
    // No compilers: each variant only parses, so the journal grows by
    // one counter-only `Progress` frame per variant (`every: 1`) at
    // negligible compute cost — frame *count* is what this test needs.
    let config = CampaignConfig {
        compilers: vec![],
        budget: 5_000,
        algorithm: spe::core::Algorithm::Paper,
        check_wrong_code: false,
        fuel: 1_000,
    };
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("resume-memory");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("wide.journal");
    let status = run_campaign_checkpointed(
        &files,
        &config,
        1,
        &path,
        &CheckpointOptions {
            every: 1,
            stop_after: None,
        },
    )
    .expect("checkpointed run");
    assert!(matches!(status, CampaignStatus::Complete(_)));

    // Count frames by streaming — materializing here would defeat the
    // point of a memory test.
    let mut frames = 0usize;
    for record in JournalIter::open(&path).expect("open") {
        record.expect("valid frame");
        frames += 1;
    }
    assert!(frames > 3_000, "journal is multi-thousand-frame: {frames}");
    let journal_bytes = std::fs::metadata(&path).expect("metadata").len() as usize;

    // Materializing the journal allocates at least the whole record set.
    let (contents, read_peak) = measure(|| JournalReader::read(&path).expect("read"));
    assert_eq!(contents.records.len(), frames);
    drop(contents);

    // The streaming resume replays the same frames with a peak bounded
    // by live job state (one job here), far under both the materialized
    // read and the journal's own size.
    let (resumed, resume_peak) = measure(|| {
        resume_campaign(&path, 1, &CheckpointOptions::default()).expect("resume")
    });
    let report = match resumed {
        CampaignStatus::Complete(report) => report,
        CampaignStatus::Interrupted => panic!("finished journal replays to completion"),
    };
    assert_eq!(report.files_processed, 1);
    drop(report);

    assert!(
        resume_peak * 2 < read_peak,
        "streaming resume ({resume_peak} B peak) must stay well under the \
         materializing read ({read_peak} B peak) over {frames} frames"
    );
    assert!(
        resume_peak < journal_bytes,
        "resume peak ({resume_peak} B) must not scale with the journal \
         ({journal_bytes} B on disk)"
    );
    assert!(
        resume_peak < 256 * 1024,
        "resume peak ({resume_peak} B) exceeds the live-state bound"
    );
    std::fs::remove_file(&path).ok();
}
