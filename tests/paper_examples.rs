//! Integration tests pinning the SPE paper's worked examples end-to-end.

use spe::bignum::BigUint;
use spe::combinatorics::{
    bell, canonical_count, orbit_count, paper_count, FlatInstance, FlatScope,
};
use spe::core::{naive_count, spe_count, Granularity, Skeleton};
use spe::skeleton::WhileSkeleton;

#[test]
fn figure1_counts_and_variants() {
    // 7 holes, 2 variables: 2^7 = 128 naive, {7 1}+{7 2} = 64 reduced.
    let sk = Skeleton::from_source(
        "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }",
    )
    .expect("builds");
    assert_eq!(naive_count(&sk, Granularity::Intra).to_u64(), Some(128));
    assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(64));
}

#[test]
fn section2_reduction_3125_to_52() {
    // §2: "a naïve program enumeration approach generates 3,125 programs.
    // In contrast, our approach only enumerates 52 non-α-equivalent
    // programs": 5 holes over 5 same-type variables.
    let sk = Skeleton::from_source("int a, b, c, d, e; void f() { a = b; c = d; e = 1; }")
        .expect("builds");
    assert_eq!(sk.num_holes(), 5);
    assert_eq!(naive_count(&sk, Granularity::Intra).to_u64(), Some(3125));
    assert_eq!(spe_count(&sk, Granularity::Intra), bell(5));
    assert_eq!(bell(5).to_u64(), Some(52));
}

#[test]
fn example1_figure5_while_enumeration() {
    let sk = WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b").expect("parses");
    // 6 holes, 2 variables: 64 naive fillings (Example 1's |P| = 64).
    assert_eq!(sk.instance().naive_count().to_u64(), Some(64));
    // Example 5: the characteristic vector ⟨a,b,a,a,a,b⟩ is "010001".
    assert_eq!(sk.original_rgs(), vec![0, 1, 0, 0, 0, 1]);
    // Reduced set: {6 1} + {6 2} = 32.
    assert_eq!(paper_count(sk.instance()).to_u64(), Some(32));
}

#[test]
fn example3_figure6_scope_reduction() {
    // "the SPE w.r.t. compact α-renamings computes 32 times fewer
    // programs": 2^5 · 4^5 = 32768 vs 4^10 = 1048576 naively.
    let with_scopes = FlatInstance::new(
        (0..5).collect(),
        2,
        vec![FlatScope {
            holes: (5..10).collect(),
            vars: 2,
        }],
    );
    assert_eq!(with_scopes.naive_count().to_u64(), Some(32768));
    let without = FlatInstance::unscoped(10, 4);
    assert_eq!(without.naive_count().to_u64(), Some(1048576));
    assert_eq!(1048576 / 32768, 32);
}

#[test]
fn example6_figure7_all_three_semantics() {
    let fig7 = FlatInstance::new(
        vec![0, 1, 4],
        2,
        vec![FlatScope {
            holes: vec![2, 3],
            vars: 2,
        }],
    );
    assert_eq!(fig7.naive_count().to_u64(), Some(128));
    assert_eq!(
        paper_count(&fig7).to_u64(),
        Some(36),
        "the paper's 16+7+7+6"
    );
    assert_eq!(canonical_count(&fig7.to_general()).to_u64(), Some(35));
    assert_eq!(orbit_count(&fig7).to_u64(), Some(40));
}

#[test]
fn figure6_program_reduction_through_the_frontend() {
    let sk = Skeleton::from_source(
        r#"
        int main() {
            int a = 1, b = 0;
            if (a) {
                int c = 3, d = 5;
                b = c + d;
            }
            printf("%d", a);
            printf("%d", b);
            return 0;
        }
        "#,
    )
    .expect("builds");
    let naive = naive_count(&sk, Granularity::Intra);
    let ours = spe_count(&sk, Granularity::Intra);
    assert_eq!(naive.to_u64(), Some(512));
    assert!(ours < naive);
    // The units/groups reproduce the paper's structure: holes {b,c,d}
    // local to the if-block, {a, a, b} function-wise.
    let units = sk.units(Granularity::Intra);
    let g = &units[0].groups[0];
    assert_eq!(g.flat.global_vars(), 2);
    assert_eq!(g.flat.scopes().len(), 1);
}

#[test]
fn equation1_matches_enumeration_for_small_sizes() {
    use spe::combinatorics::{partitions_at_most, Rgs};
    for n in 1..8usize {
        for k in 1..=n {
            assert_eq!(
                BigUint::from(Rgs::new(n, k).count()),
                partitions_at_most(n as u32, k as u32),
                "S = sum of Stirling numbers at n={n}, k={k}"
            );
        }
    }
}
