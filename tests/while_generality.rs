//! Integration tests for the §5.3 generality story: SPE applied
//! unchanged to the WHILE toolchain finds the seeded CompCert-like and
//! Scala-like defects.

use spe::combinatorics::Rgs;
use spe::skeleton::WhileSkeleton;
use spe::while_lang::compiler::{compile, execute, BugProfile, Options};
use spe::while_lang::{interpret, Outcome};
use std::collections::BTreeSet;

fn campaign(src: &str, profile: BugProfile, opt: u8) -> (BTreeSet<String>, usize, usize) {
    let sk = WhileSkeleton::from_source(src).expect("parses");
    let (n, k) = (sk.num_holes(), sk.variables().len());
    let mut crashes = BTreeSet::new();
    let mut wrong = 0;
    let mut total = 0;
    let mut names = Vec::new();
    let mut rendered = String::new();
    for rgs in Rgs::new(n, k) {
        // Template-compiled rendering is the primary realization path;
        // the legacy AST rebuild stays on as the differential oracle.
        sk.render_rgs_into(&rgs, &mut names, &mut rendered);
        assert_eq!(
            rendered,
            sk.realize_rgs(&rgs).to_string(),
            "template drifted from the legacy realization on {src}"
        );
        let v = spe::while_lang::parse(&rendered).expect("rendered variant parses");
        total += 1;
        let Ok(Outcome::Finished(reference)) = interpret(&v, 20_000) else {
            continue;
        };
        match compile(
            &v,
            Options {
                opt_level: opt,
                profile,
            },
        ) {
            Err(ice) => {
                crashes.insert(ice.to_string());
            }
            Ok(c) => {
                if let Ok(Outcome::Finished(out)) = execute(&c, 200_000) {
                    if out != reference {
                        wrong += 1;
                    }
                }
            }
        }
    }
    (crashes, wrong, total)
}

#[test]
fn compcert_profile_crash_found_by_enumeration() {
    // The original program is healthy; some variant rewires the
    // subtraction into structurally identical compound operands.
    let src = "a := 1; b := 2; c := (a + b) - (c + b); d := c";
    let (crashes, _, total) = campaign(src, BugProfile::CompCertSim, 1);
    assert!(total > 100, "non-trivial enumeration ({total})");
    assert!(
        crashes
            .iter()
            .any(|c| c.contains("operand_address_compare")),
        "folding crash found: {crashes:?}"
    );
    // The clean profile never crashes on the same variants.
    let (none, _, _) = campaign(src, BugProfile::None, 1);
    assert!(none.is_empty());
}

#[test]
fn scala_profile_typer_crash_found_by_enumeration() {
    let src = "a := 3; b := 5; while b do b := a - 1";
    let (crashes, _, _) = campaign(src, BugProfile::ScalaSim, 1);
    assert!(
        crashes.iter().any(|c| c.contains("typer")),
        "typer crash found: {crashes:?}"
    );
}

#[test]
fn scala_profile_wrong_code_found_by_enumeration() {
    let src = "y := 0; x := y; while x < 3 do begin s := s + 1; x := x + 1 end";
    let (_, wrong, _) = campaign(src, BugProfile::ScalaSim, 2);
    assert!(wrong > 0, "copy-propagation miscompile found");
    // No false positives under the clean profile.
    let (_, clean_wrong, _) = campaign(src, BugProfile::None, 2);
    assert_eq!(clean_wrong, 0, "clean compiler must agree with interpreter");
}

#[test]
fn clean_profile_has_no_differential_mismatch_on_figure5() {
    let (crashes, wrong, total) = campaign(
        "a := 10; b := 1; while a do a := a - b",
        BugProfile::None,
        2,
    );
    assert!(crashes.is_empty());
    assert_eq!(wrong, 0);
    assert_eq!(total, 32, "{{6 1}} + {{6 2}} variants");
}
