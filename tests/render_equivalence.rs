//! Byte-identity of the template render path against the legacy realize
//! path, over every corpus seed skeleton, every enumeration algorithm and
//! sharded as well as serial streaming.
//!
//! The compiled [`RenderTemplate`](spe::skeleton::RenderTemplate) replaces
//! per-variant AST re-printing; the shard-determinism guarantees of the
//! engine only carry over if its output is byte-for-byte the old
//! `Skeleton::realize` output. This suite is the differential oracle.

use spe::core::{Algorithm, Enumerator, EnumeratorConfig, ShardedEnumerator, Skeleton};
use spe::corpus::seeds;
use std::ops::ControlFlow;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Paper,
    Algorithm::Canonical,
    Algorithm::Orbit,
    Algorithm::Naive,
];

fn config(algorithm: Algorithm) -> EnumeratorConfig {
    EnumeratorConfig {
        algorithm,
        budget: 300,
        ..Default::default()
    }
}

#[test]
fn template_render_matches_legacy_realize_for_every_seed_and_algorithm() {
    for file in seeds::all() {
        let sk = Skeleton::from_source(&file.source)
            .unwrap_or_else(|e| panic!("seed {} does not analyze: {e}", file.name));
        for algorithm in ALGORITHMS {
            let mut buf = String::new();
            let mut checked = 0u64;
            Enumerator::new(config(algorithm)).enumerate(&sk, &mut |v| {
                // Template path: compiled segments + interned names into a
                // reused buffer.
                v.render_into(&sk, &mut buf);
                // Legacy path: occurrence-keyed string map + AST re-walk.
                let legacy = sk.realize(&sk.rename_map(&v.names));
                assert_eq!(
                    buf, legacy,
                    "render drift on seed {} under {algorithm:?} at variant {}",
                    file.name, v.index
                );
                checked += 1;
                ControlFlow::Continue(())
            });
            assert!(checked > 0, "{}: {algorithm:?} emitted nothing", file.name);
        }
    }
}

#[test]
fn identity_render_matches_printed_source_for_every_seed() {
    for file in seeds::all() {
        let sk = Skeleton::from_source(&file.source)
            .unwrap_or_else(|e| panic!("seed {} does not analyze: {e}", file.name));
        assert_eq!(sk.render(&[]), sk.source(), "seed {}", file.name);
        assert_eq!(
            sk.template().num_slots(),
            sk.num_holes(),
            "seed {} template must expose one slot per hole",
            file.name
        );
    }
}

#[test]
fn sharded_rendering_is_byte_identical_to_serial_for_every_seed() {
    for file in seeds::all() {
        let sk = Skeleton::from_source(&file.source)
            .unwrap_or_else(|e| panic!("seed {} does not analyze: {e}", file.name));
        for algorithm in ALGORITHMS {
            let serial = Enumerator::new(config(algorithm)).collect_sources(&sk);
            for shards in [2usize, 4] {
                let merged = ShardedEnumerator::new(config(algorithm), shards).collect_sources(&sk);
                assert_eq!(
                    merged, serial,
                    "seed {} under {algorithm:?} with {shards} shards",
                    file.name
                );
            }
        }
    }
}
