//! Byte-identity of the pluggable-backend oracle path.
//!
//! The campaign entry points keep the historical direct in-process code
//! intact and add trait dispatch next to it, so these tests are a real
//! two-implementation comparison: for random corpora, campaigns driven
//! through the trait-dispatched in-process backend
//! (`spe::simcc::backend::SimccBackend`) must be **equal in every
//! field** to the direct path — serial, at 1/2/4/16 workers, and
//! through a kill/resume checkpoint cycle. A final test pins the
//! journal's backend identity gate: resuming under a different backend
//! id or configuration hash is refused, never silently mixed.

use proptest::prelude::*;
use spe::core::Algorithm;
use spe::corpus::{generate, seeds, CorpusConfig};
use spe::harness::checkpoint::{
    resume_campaign, resume_campaign_with_backend, run_campaign_checkpointed_with_backend,
    CheckpointError, CheckpointOptions,
};
use spe::harness::{
    run_campaign, run_campaign_parallel, run_campaign_parallel_with_backend,
    run_campaign_with_backend, CampaignConfig,
};
use spe::simcc::backend::{BackendError, CompilerBackend, SimccBackend};
use spe::simcc::{Compiler, CompilerId, Observation};

fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 2),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 30,
        algorithm: Algorithm::Paper,
        check_wrong_code: true,
        fuel: 10_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn backend_campaigns_are_byte_identical_to_direct(seed in 0u64..5_000) {
        let files = generate(&CorpusConfig { files: 3, seed });
        let config = campaign_config();
        let direct = run_campaign(&files, &config);
        prop_assert_eq!(&run_campaign_with_backend(&files, &config, &SimccBackend), &direct);
        for workers in [1usize, 2, 4, 16] {
            prop_assert_eq!(&run_campaign_parallel(&files, &config, workers), &direct);
            prop_assert_eq!(
                &run_campaign_parallel_with_backend(&files, &config, &SimccBackend, workers),
                &direct
            );
        }
    }
}

#[test]
fn killed_and_resumed_backend_campaign_matches_uninterrupted_direct() {
    let files = seeds::all();
    let config = campaign_config();
    let direct = run_campaign(&files, &config);
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("backend-identity");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let journal = dir.join("campaign.journal");

    // Kill between checkpoints, then resume repeatedly until complete.
    let mut status = run_campaign_checkpointed_with_backend(
        &files,
        &config,
        4,
        &journal,
        &CheckpointOptions {
            every: 16,
            stop_after: Some(40),
        },
        &SimccBackend,
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted(), "stop_after should have fired");
    let mut cycles = 0;
    while status.is_interrupted() {
        cycles += 1;
        assert!(cycles < 100, "resume never converged");
        // Alternate worker counts across resumes; the report must not
        // care. The in-process backend records the same manifest
        // identity as the direct path, so the plain resume is equally
        // valid — prove it by alternating entry points too.
        status = if cycles % 2 == 0 {
            resume_campaign(
                &journal,
                1 + cycles % 3,
                &CheckpointOptions {
                    every: 16,
                    stop_after: Some(60),
                },
            )
            .expect("resume")
        } else {
            resume_campaign_with_backend(
                &journal,
                &SimccBackend,
                1 + cycles % 3,
                &CheckpointOptions {
                    every: 16,
                    stop_after: Some(60),
                },
            )
            .expect("resume")
        };
    }
    let report = status.into_report().expect("complete");
    assert_eq!(report, direct, "kill/resume cycle diverged from direct");
}

/// A backend with a foreign identity but working observations — enough
/// to write a resumable journal that no other backend may pick up.
struct Dummy(u64);

impl CompilerBackend for Dummy {
    fn id(&self) -> &str {
        "dummy"
    }

    fn config_hash(&self) -> u64 {
        self.0
    }

    fn observe_config(
        &self,
        source: &str,
        cc: Compiler,
        wrong_code_fuel: Option<u64>,
    ) -> Result<Observation, BackendError> {
        SimccBackend.observe_config(source, cc, wrong_code_fuel)
    }
}

#[test]
fn resume_refuses_a_mismatched_backend() {
    let files = seeds::all();
    let config = campaign_config();
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("backend-mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let journal = dir.join("campaign.journal");
    let options = CheckpointOptions {
        every: 16,
        stop_after: Some(40),
    };
    let status = run_campaign_checkpointed_with_backend(
        &files,
        &config,
        2,
        &journal,
        &options,
        &Dummy(42),
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted());

    // Wrong backend id: the in-process default must refuse.
    let err = resume_campaign(&journal, 2, &options).expect_err("id mismatch");
    assert!(matches!(err, CheckpointError::Foreign(_)));
    let message = err.to_string();
    assert!(
        message.contains("dummy") && message.contains("simcc"),
        "refusal names both backends: {message}"
    );

    // Right id, wrong configuration hash: also refused.
    let err = resume_campaign_with_backend(&journal, &Dummy(7), 2, &options)
        .expect_err("hash mismatch");
    assert!(err.to_string().contains("config hash"), "{err}");

    // The matching backend resumes and completes.
    let mut status = resume_campaign_with_backend(
        &journal,
        &Dummy(42),
        2,
        &CheckpointOptions {
            every: 16,
            stop_after: None,
        },
    )
    .expect("matching backend resumes");
    while status.is_interrupted() {
        status = resume_campaign_with_backend(
            &journal,
            &Dummy(42),
            2,
            &CheckpointOptions {
                every: 16,
                stop_after: None,
            },
        )
        .expect("resume");
    }
    assert_eq!(
        status.into_report().expect("complete"),
        run_campaign(&files, &config),
        "dummy-backend campaign is still the in-process campaign"
    );
}
