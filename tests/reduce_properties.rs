//! Property tests for the reduction stage: for randomly drawn corpus
//! slices, every reduced witness must parse, pass scope analysis,
//! reproduce the original finding under the same compiler configuration,
//! and never be larger than its input reproducer.

use proptest::prelude::*;
use spe::corpus::{generate, CorpusConfig};
use spe::harness::reduction::{reduce_findings, reproduces, ReductionOptions};
use spe::harness::{run_campaign, CampaignConfig};
use spe::simcc::{Compiler, CompilerId};

fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 2),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 24,
        algorithm: spe::core::Algorithm::Paper,
        check_wrong_code: true,
        fuel: 10_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reduced_witnesses_are_wellformed_reproducing_and_smaller(seed in 0u64..5_000) {
        let files = generate(&CorpusConfig { files: 3, seed });
        let config = campaign_config();
        let mut report = run_campaign(&files, &config);
        reduce_findings(
            &mut report,
            &ReductionOptions { fuel: config.fuel, ..ReductionOptions::default() },
            2,
        );
        for f in &report.findings {
            let reduced = f
                .reduced
                .as_ref()
                .unwrap_or_else(|| panic!("finding {:?} lacks a witness (seed {seed})", f.signature));
            // Never larger than the raw reproducer.
            prop_assert!(
                reduced.reduced_bytes <= reduced.original_bytes,
                "witness grew for {:?} (seed {seed})",
                f.signature
            );
            prop_assert_eq!(reduced.original_bytes, f.reproducer.len());
            // Parses and scope-checks.
            let p = spe::minic::parse(&reduced.source)
                .unwrap_or_else(|e| panic!("witness does not parse ({e}, seed {seed})"));
            spe::minic::analyze(&p)
                .unwrap_or_else(|e| panic!("witness fails sema ({e}, seed {seed})"));
            // Still reproduces the same kind + bug id under the same
            // compiler configuration.
            prop_assert!(
                reproduces(f, &p, config.fuel),
                "witness stopped reproducing {:?} (bug {:?}, seed {seed}):\n{}",
                f.signature,
                f.bug_id,
                reduced.source
            );
        }
    }

    #[test]
    fn fingerprint_merges_only_pair_same_family_same_kind(seed in 0u64..5_000) {
        let files = generate(&CorpusConfig { files: 4, seed });
        let config = campaign_config();
        let mut report = run_campaign(&files, &config);
        reduce_findings(
            &mut report,
            &ReductionOptions { fuel: config.fuel, ..ReductionOptions::default() },
            4,
        );
        for f in &report.findings {
            let Some(root_sig) = &f.fingerprint_duplicate_of else { continue };
            let root = report
                .findings
                .iter()
                .find(|g| &g.signature == root_sig)
                .expect("merge target exists");
            prop_assert_eq!(root.compiler.family, f.compiler.family);
            prop_assert_eq!(root.kind, f.kind);
            prop_assert!(root.fingerprint_duplicate_of.is_none(), "roots are not duplicates");
            let (a, b) = (
                root.reduced.as_ref().expect("root reduced"),
                f.reduced.as_ref().expect("duplicate reduced"),
            );
            prop_assert_eq!(&a.fingerprint, &b.fingerprint, "merge keys on the fingerprint");
        }
    }
}
