//! Cross-algorithm integration tests: the four enumeration semantics
//! compared on real mini-C programs end-to-end.

use spe::bignum::BigUint;
use spe::core::{Algorithm, Enumerator, EnumeratorConfig, Granularity, Skeleton};
use std::collections::HashSet;
use std::ops::ControlFlow;

fn sources(sk: &Skeleton, algorithm: Algorithm) -> Vec<String> {
    Enumerator::new(EnumeratorConfig {
        algorithm,
        granularity: Granularity::Intra,
        budget: 100_000,
    })
    .collect_sources(sk)
}

/// Canonical dependence fingerprint of a program: for each function, the
/// RGS of its hole-to-variable assignment. α-equivalent programs agree.
fn fingerprint(src: &str) -> Vec<usize> {
    let sk = Skeleton::from_source(src).expect("variant parses");
    let labels: Vec<usize> = sk.holes().iter().map(|h| h.var.0).collect();
    spe::combinatorics::labels_to_rgs(&labels)
}

const PROGRAMS: &[&str] = &[
    "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }",
    "int g; void f() { int x = 0; if (x) { int y = 1; g = x + y; } }",
    "int a, b; double p, q; void f() { a = b; p = q; b = a + a; }",
    "int u; int main() { for (int i = 0; i < 3; i++) u += i; return u; }",
];

#[test]
fn every_algorithm_emits_valid_distinct_programs() {
    for src in PROGRAMS {
        let sk = Skeleton::from_source(src).expect("builds");
        for algorithm in [
            Algorithm::Paper,
            Algorithm::Canonical,
            Algorithm::Orbit,
            Algorithm::Naive,
        ] {
            let out = sources(&sk, algorithm);
            let mut seen = HashSet::new();
            for v in &out {
                Skeleton::from_source(v)
                    .unwrap_or_else(|e| panic!("{algorithm:?} on {src}: {e}\n{v}"));
                assert!(seen.insert(v.clone()), "{algorithm:?} duplicate on {src}");
            }
        }
    }
}

#[test]
fn canonical_has_no_alpha_equivalent_pair() {
    for src in PROGRAMS {
        let sk = Skeleton::from_source(src).expect("builds");
        let out = sources(&sk, Algorithm::Canonical);
        let mut prints = HashSet::new();
        for v in &out {
            assert!(
                prints.insert(fingerprint(v)),
                "canonical emitted two α-equivalent variants of {src}:\n{v}"
            );
        }
    }
}

#[test]
fn canonical_covers_every_naive_dependence_class() {
    // Exhaustiveness: every naive filling's partition fingerprint must
    // appear among the canonical representatives.
    for src in PROGRAMS {
        let sk = Skeleton::from_source(src).expect("builds");
        let canonical: HashSet<Vec<usize>> = sources(&sk, Algorithm::Canonical)
            .iter()
            .map(|v| fingerprint(v))
            .collect();
        for v in sources(&sk, Algorithm::Naive) {
            let fp = fingerprint(&v);
            assert!(
                canonical.contains(&fp),
                "naive variant not covered canonically for {src}:\n{v}"
            );
        }
    }
}

#[test]
fn counts_relate_across_algorithms() {
    for src in PROGRAMS {
        let sk = Skeleton::from_source(src).expect("builds");
        let count = |a| BigUint::from(sources(&sk, a).len());
        let (c, o, n) = (
            count(Algorithm::Canonical),
            count(Algorithm::Orbit),
            count(Algorithm::Naive),
        );
        let p = count(Algorithm::Paper);
        assert!(c <= o, "{src}: canonical <= orbit");
        assert!(o <= n, "{src}: orbit <= naive");
        assert!(p <= o, "{src}: paper <= orbit");
    }
}

#[test]
fn inter_procedural_unit_is_at_least_intra_product() {
    // §4.3: the inter-procedural enumeration considers cross-function
    // partitions the intra-procedural product cannot express.
    let src = "int g, h; void f() { g = h; } void k() { h = g; }";
    let sk = Skeleton::from_source(src).expect("builds");
    let intra = spe::core::spe_count(&sk, Granularity::Intra);
    let inter = spe::core::spe_count(&sk, Granularity::Inter);
    assert!(
        intra <= inter,
        "inter ({inter:?}) explores at least the intra product ({intra:?})"
    );
}

#[test]
fn budgeted_enumeration_prefix_is_stable() {
    // Determinism: two runs emit the same prefix.
    let sk = Skeleton::from_source(PROGRAMS[0]).expect("builds");
    let e = Enumerator::new(EnumeratorConfig {
        budget: 17,
        ..Default::default()
    });
    let mut a = Vec::new();
    e.enumerate(&sk, &mut |v| {
        a.push(v.source(&sk));
        ControlFlow::Continue(())
    });
    let mut b = Vec::new();
    e.enumerate(&sk, &mut |v| {
        b.push(v.source(&sk));
        ControlFlow::Continue(())
    });
    assert_eq!(a, b);
    assert_eq!(a.len(), 17);
}
