//! End-to-end integration: corpus → enumeration → differential testing →
//! triage, across crates.

use spe::core::{Algorithm, Enumerator, EnumeratorConfig, Granularity, Skeleton};
use spe::corpus::{generate, seeds, CorpusConfig};
use spe::harness::triage::{figure10, table4};
use spe::harness::{run_campaign, CampaignConfig, FindingKind};
use spe::simcc::bugs::GCC_VERSIONS;
use spe::simcc::{interp, Compiler, CompilerId};
use std::ops::ControlFlow;

fn trunk_campaign() -> spe::harness::CampaignReport {
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig {
        files: 60,
        seed: 44,
    }));
    run_campaign(
        &files,
        &CampaignConfig {
            compilers: vec![
                Compiler::new(CompilerId::gcc(700), 0),
                Compiler::new(CompilerId::gcc(700), 3),
                Compiler::new(CompilerId::clang(390), 3),
            ],
            budget: 80,
            algorithm: Algorithm::Paper,
            check_wrong_code: true,
            fuel: 20_000,
        },
    )
}

#[test]
fn campaign_finds_crashes_and_wrong_code() {
    let report = trunk_campaign();
    assert!(report.files_processed >= 60);
    assert!(report.variants_tested > 1000);
    let kinds: Vec<FindingKind> = report.findings.iter().map(|f| f.kind).collect();
    assert!(kinds.contains(&FindingKind::Crash), "crash bugs found");
    assert!(
        kinds.contains(&FindingKind::WrongCode),
        "wrong-code bugs found"
    );
}

#[test]
fn triage_tables_are_consistent_with_findings() {
    let report = trunk_campaign();
    let rows = table4(&report, &["gcc-sim", "clang-sim"]);
    let total: usize = rows.iter().map(|r| r.reported).sum();
    assert_eq!(total, report.findings.len());
    let fig = figure10(&report, "gcc-sim", GCC_VERSIONS);
    assert!(!fig.components.is_empty());
    assert!(fig.opt_levels.len() == 4);
}

#[test]
fn all_enumerated_variants_of_seeds_are_valid_programs() {
    for file in seeds::all() {
        let sk = Skeleton::from_source(&file.source).expect("seed builds");
        let e = Enumerator::new(EnumeratorConfig {
            budget: 300,
            ..Default::default()
        });
        let mut count = 0;
        e.enumerate(&sk, &mut |v| {
            let src = v.source(&sk);
            Skeleton::from_source(&src)
                .unwrap_or_else(|err| panic!("{}: invalid variant: {err}\n{src}", file.name));
            count += 1;
            ControlFlow::Continue(())
        });
        assert!(count > 0, "{} produced no variants", file.name);
    }
}

#[test]
fn reference_interpreter_agrees_with_vm_on_clean_compiler() {
    // Property over the corpus: for every UB-free program, a bug-free
    // compiler configuration must agree with the reference interpreter.
    let files = generate(&CorpusConfig {
        files: 40,
        seed: 99,
    });
    let cc = Compiler::new(CompilerId::gcc(440), 0); // -O0, no live triggers at O0
    let mut compared = 0;
    for f in &files {
        let Ok(p) = spe::minic::parse(&f.source) else {
            continue;
        };
        let Ok(reference) = interp::run(&p, interp::Limits::default()) else {
            continue; // UB or non-termination
        };
        let Ok(compiled) = cc.compile(&p) else {
            continue; // e.g. struct files
        };
        if !compiled.miscompiled_by.is_empty() {
            continue;
        }
        let Ok(out) = compiled.execute(1_000_000) else {
            panic!("VM trapped on UB-free program {}:\n{}", f.name, f.source);
        };
        assert_eq!(
            out.exit_code, reference.exit_code,
            "differential mismatch without a seeded bug on {}:\n{}",
            f.name, f.source
        );
        compared += 1;
    }
    assert!(compared >= 10, "only {compared} programs compared");
}

#[test]
fn counting_and_enumeration_agree_on_corpus_sample() {
    use spe::bignum::BigUint;
    let files = generate(&CorpusConfig { files: 60, seed: 5 });
    let mut checked = 0;
    for f in &files {
        let Ok(sk) = Skeleton::from_source(&f.source) else {
            continue;
        };
        let count = spe::core::spe_count(&sk, Granularity::Intra);
        if count > BigUint::from(2000u64) {
            continue;
        }
        let e = Enumerator::new(EnumeratorConfig {
            budget: 2001,
            ..Default::default()
        });
        let outcome = e.enumerate(&sk, &mut |_| ControlFlow::Continue(()));
        assert_eq!(
            BigUint::from(outcome.emitted),
            count,
            "closed form vs enumeration on {}",
            f.name
        );
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} files checked");
}
