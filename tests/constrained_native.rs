//! The constrained shard-native canonical path over the corpus.
//!
//! PR 2's native gate covered only single-group skeletons whose holes see
//! the whole variable set; everything else fell back to materializing
//! per-group solution lists. These tests pin the generalized gate
//! (`DESIGN.md §8`): every corpus skeleton within the 128-variable mask
//! width takes the native path — including constrained, multi-group ones
//! — and shard unions stay byte-identical to the serial (materialized)
//! enumerator at 1/2/4/8 shards, budget truncation included.

use spe::core::{
    Algorithm, Enumerator, EnumeratorConfig, Granularity, ShardedEnumerator, Skeleton,
};
use std::ops::ControlFlow;

fn config(budget: usize) -> EnumeratorConfig {
    EnumeratorConfig {
        algorithm: Algorithm::Canonical,
        granularity: Granularity::Intra,
        budget,
    }
}

/// Serial reference: (index, source) pairs in emission order.
fn serial_sequence(sk: &Skeleton, cfg: EnumeratorConfig) -> Vec<(u64, String)> {
    let mut out = Vec::new();
    Enumerator::new(cfg).enumerate(sk, &mut |v| {
        out.push((v.index, v.source(sk)));
        ControlFlow::Continue(())
    });
    out
}

fn check_native_and_identical(name: &str, sk: &Skeleton, cfg: EnumeratorConfig) {
    let serial = serial_sequence(sk, cfg);
    for shards in [1usize, 2, 4, 8] {
        let sharded = ShardedEnumerator::new(cfg, shards);
        let space = sharded.prepare(sk);
        assert!(
            space.is_shard_native(),
            "{name}: the canonical gate must engage (no list materialized)"
        );
        let mut union: Vec<(u64, String)> = Vec::new();
        for shard in 0..shards {
            sharded.enumerate_shard_prepared(&space, shard, &mut |v| {
                union.push((v.index, v.source(sk)));
                ControlFlow::Continue(())
            });
        }
        assert_eq!(union, serial, "{name}: {shards} shards diverged");
    }
}

#[test]
fn corpus_seed_skeletons_take_the_native_path_and_match_serial() {
    let mut multi_group = 0usize;
    for file in spe::corpus::seeds::all() {
        let sk = Skeleton::from_source(&file.source)
            .unwrap_or_else(|e| panic!("{}: {e}", file.name));
        let groups: usize = sk
            .units(Granularity::Intra)
            .iter()
            .map(|u| u.groups.len())
            .sum();
        multi_group += usize::from(groups > 1);
        check_native_and_identical(&file.name, &sk, config(10_000));
    }
    // The paper-figure seeds are all unconstrained (the generated-corpus
    // test below owns the constrained regime), but they must cover the
    // multi-group product walk.
    assert!(multi_group >= 1, "no multi-group seed skeleton");
}

#[test]
fn generated_corpus_skeletons_take_the_native_path_and_match_serial() {
    let files = spe::corpus::generate(&spe::corpus::CorpusConfig {
        files: 40,
        seed: 7,
    });
    let mut constrained_multi_group = 0usize;
    for file in &files {
        let Ok(sk) = Skeleton::from_source(&file.source) else {
            continue;
        };
        let units = sk.units(Granularity::Intra);
        let groups: Vec<_> = units.iter().flat_map(|u| u.groups.iter()).collect();
        if groups.len() > 1 && groups.iter().any(|g| !g.is_unconstrained()) {
            constrained_multi_group += 1;
        }
        // A small budget keeps big files cheap while still covering the
        // truncation interplay on every shape the generator produces.
        check_native_and_identical(&file.name, &sk, config(500));
    }
    assert!(
        constrained_multi_group >= 3,
        "only {constrained_multi_group} constrained multi-group files; \
         the corpus slice no longer exercises the new path"
    );
}
