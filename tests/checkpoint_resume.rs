//! Checkpoint/resume acceptance tests: a campaign killed at an arbitrary
//! point — checkpoint boundary or mid-interval — and resumed from its
//! journal must produce a final report **byte-identical** to an
//! uninterrupted serial run, at 1/2/4/16 workers, across kill counts,
//! worker-count changes between runs, and journal tail corruption.

use proptest::prelude::*;
use spe::corpus::{generate, seeds, CorpusConfig};
use spe::harness::checkpoint::{
    reduce_findings_checkpointed, resume_campaign, run_campaign_checkpointed, CampaignStatus,
    CheckpointOptions,
};
use spe::harness::reduction::{reduce_findings, ReductionOptions};
use spe::harness::{run_campaign, CampaignConfig, CampaignReport};
use spe::simcc::{Compiler, CompilerId};
use std::path::PathBuf;

fn config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 40,
        algorithm: spe::core::Algorithm::Paper,
        check_wrong_code: true,
        fuel: 10_000,
    }
}

fn journal_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spe-checkpoint-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.journal"))
}

/// Resumes until completion, growing the kill budget geometrically so
/// repeated kills cannot starve progress forever.
fn resume_to_completion(path: &PathBuf, workers: usize, mut stop: Option<u64>) -> CampaignReport {
    for _ in 0..32 {
        let status = resume_campaign(
            path,
            workers,
            &CheckpointOptions {
                every: 8,
                stop_after: stop,
            },
        )
        .expect("resume");
        match status {
            CampaignStatus::Complete(report) => return report,
            CampaignStatus::Interrupted => stop = stop.map(|s| s.saturating_mul(2)),
        }
    }
    panic!("campaign did not complete within 32 resumes");
}

#[test]
fn uninterrupted_checkpointed_run_matches_the_plain_campaign() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign(&files, &config);
    for workers in [1usize, 2, 4, 16] {
        let path = journal_path(&format!("uninterrupted-{workers}"));
        let status = run_campaign_checkpointed(
            &files,
            &config,
            workers,
            &path,
            &CheckpointOptions {
                every: 16,
                stop_after: None,
            },
        )
        .expect("checkpointed run");
        let report = status.into_report().expect("completed");
        assert_eq!(report, reference, "{workers} workers diverged");
        // Resuming a finished journal replays it without recomputing.
        let replayed = resume_to_completion(&path, workers, None);
        assert_eq!(replayed, reference, "{workers} workers replay diverged");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn kill_and_resume_is_byte_identical_at_every_worker_count() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign(&files, &config);
    for workers in [1usize, 2, 4, 16] {
        // Kill points: before the first checkpoint of most shards, at a
        // checkpoint boundary (multiples of `every = 8`), mid-interval.
        for stop in [3u64, 24, 61] {
            let path = journal_path(&format!("kill-{workers}-{stop}"));
            let status = run_campaign_checkpointed(
                &files,
                &config,
                workers,
                &path,
                &CheckpointOptions {
                    every: 8,
                    stop_after: Some(stop),
                },
            )
            .expect("checkpointed run");
            let report = match status {
                CampaignStatus::Complete(r) => r, // tiny spaces may finish early
                CampaignStatus::Interrupted => resume_to_completion(&path, workers, None),
            };
            assert_eq!(report, reference, "workers {workers}, stop {stop}");
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn repeated_kills_and_worker_count_changes_still_converge_identically() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign(&files, &config);
    let path = journal_path("repeated-kills");
    let status = run_campaign_checkpointed(
        &files,
        &config,
        4,
        &path,
        &CheckpointOptions {
            every: 4,
            stop_after: Some(30),
        },
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted(), "workload outlives the first kill");
    // Kill it twice more while resuming under different worker counts;
    // the job decomposition is pinned by the manifest, so the final
    // report cannot drift.
    let report = {
        let mut stop = Some(20u64);
        let mut report = None;
        for (attempt, workers) in [16usize, 1, 2, 4, 16, 2, 1, 4].iter().enumerate() {
            match resume_campaign(
                &path,
                *workers,
                &CheckpointOptions {
                    every: 4,
                    stop_after: stop,
                },
            )
            .expect("resume")
            {
                CampaignStatus::Complete(r) => {
                    report = Some(r);
                    break;
                }
                CampaignStatus::Interrupted => {
                    if attempt >= 2 {
                        stop = None; // let it finish eventually
                    }
                }
            }
        }
        report.expect("converged")
    };
    assert_eq!(report, reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_tail_frames_are_recovered_on_resume() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign(&files, &config);
    for cut in [1usize, 7, 40, 200] {
        let path = journal_path(&format!("torn-{cut}"));
        let status = run_campaign_checkpointed(
            &files,
            &config,
            4,
            &path,
            &CheckpointOptions {
                every: 8,
                stop_after: Some(50),
            },
        )
        .expect("checkpointed run");
        assert!(status.is_interrupted());
        // Chop bytes off the tail: a torn final frame (small cuts) or
        // whole lost records (large cuts). Both only lose committed
        // work, which resume recomputes identically.
        let bytes = std::fs::read(&path).expect("journal bytes");
        assert!(bytes.len() > cut + 64, "journal long enough to cut {cut}");
        std::fs::write(&path, &bytes[..bytes.len() - cut]).expect("truncate");
        let report = resume_to_completion(&path, 4, None);
        assert_eq!(report, reference, "cut {cut}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn concurrent_resumes_of_one_journal_are_rejected() {
    let files = seeds::all();
    let config = config();
    let path = journal_path("concurrent");
    let status = run_campaign_checkpointed(
        &files,
        &config,
        2,
        &path,
        &CheckpointOptions {
            every: 8,
            stop_after: Some(40),
        },
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted());
    // A stale writer still holds the journal (a racing resume, a hung
    // process): the second resume must fail fast, not interleave frames.
    let contents = spe::persist::JournalReader::read(&path).expect("readable");
    let held = spe::persist::Journal::open_append_with(&path, &contents).expect("lock");
    assert!(
        resume_campaign(&path, 2, &CheckpointOptions::default()).is_err(),
        "resume under a held journal lock must be rejected"
    );
    drop(held);
    let report = resume_to_completion(&path, 2, None);
    assert_eq!(report, run_campaign(&files, &config));
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_non_journal_file_is_rejected_not_misread() {
    let path = journal_path("not-a-journal");
    std::fs::write(&path, b"definitely not a journal").expect("write");
    let err = resume_campaign(&path, 2, &CheckpointOptions::default());
    assert!(err.is_err(), "foreign file must be rejected");
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpointed_reduction_replays_witnesses_and_stays_identical() {
    let files = seeds::all();
    let config = config();
    let path = journal_path("reduction");
    let report = run_campaign_checkpointed(
        &files,
        &config,
        2,
        &path,
        &CheckpointOptions::default(),
    )
    .expect("campaign")
    .into_report()
    .expect("completed");
    assert!(!report.findings.is_empty());
    let options = ReductionOptions {
        fuel: config.fuel,
        ..ReductionOptions::default()
    };
    // Uninterrupted in-memory reference.
    let mut reference = report.clone();
    reduce_findings(&mut reference, &options, 4);
    // Checkpointed pass, journal-extended.
    let mut checkpointed = report.clone();
    reduce_findings_checkpointed(&mut checkpointed, &options, 4, &path).expect("reduce");
    assert_eq!(checkpointed, reference);
    // Drop a few Reduced records off the tail (a crash mid-reduction)
    // and re-run on a fresh copy: replayed witnesses + recomputed
    // stragglers must still match exactly.
    let bytes = std::fs::read(&path).expect("journal bytes");
    std::fs::write(&path, &bytes[..bytes.len() - 100]).expect("truncate");
    let mut resumed = report.clone();
    reduce_findings_checkpointed(&mut resumed, &options, 3, &path).expect("reduce resumed");
    assert_eq!(resumed, reference);
    // A report that does not match the journal's recorded findings must
    // be rejected, not silently attached to the wrong witnesses.
    let mut mismatched = report.clone();
    mismatched.findings[0].signature = "some other campaign's finding".into();
    assert!(
        reduce_findings_checkpointed(&mut mismatched, &options, 2, &path).is_err(),
        "signature mismatch must be a Foreign error"
    );
    // Resuming the reduction under different options must also be
    // rejected: replayed witnesses were computed under the recorded
    // options, and a mixture would match no uninterrupted run.
    let mut drifted = report.clone();
    assert!(
        reduce_findings_checkpointed(
            &mut drifted,
            &ReductionOptions {
                fuel: options.fuel * 2,
                ..options
            },
            2,
            &path
        )
        .is_err(),
        "reduction-option drift must be a Foreign error"
    );
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: for random corpora, kill points and
    /// checkpoint cadences, kill → resume(s) → completion reproduces the
    /// uninterrupted serial report byte-for-byte at every worker count.
    #[test]
    fn killed_campaigns_resume_byte_identically(
        seed in 0u64..2_000,
        stop in 1u64..120,
        every in 1u64..24,
        workers_idx in 0usize..4,
        resume_workers_idx in 0usize..4,
    ) {
        let workers = [1usize, 2, 4, 16][workers_idx];
        let resume_workers = [1usize, 2, 4, 16][resume_workers_idx];
        let files = generate(&CorpusConfig { files: 2, seed });
        let config = config();
        let reference = run_campaign(&files, &config);
        let path = journal_path(&format!("prop-{seed}-{stop}-{every}-{workers}-{resume_workers}"));
        let status = run_campaign_checkpointed(
            &files,
            &config,
            workers,
            &path,
            &CheckpointOptions { every, stop_after: Some(stop) },
        ).expect("checkpointed run");
        let report = match status {
            CampaignStatus::Complete(r) => r,
            CampaignStatus::Interrupted => resume_to_completion(&path, resume_workers, Some(stop)),
        };
        prop_assert_eq!(report, reference);
        std::fs::remove_file(&path).ok();
    }
}
