//! Injected-fault survival suite for the supervised orchestrator
//! (`DESIGN.md` §11): worker panics, journal append failures (ENOSPC /
//! EIO), kills during compaction, torn tails, and mid-journal bit
//! flips. Every fault must be absorbed — quarantined, retried, or
//! degraded — and the final report must stay **byte-identical** to the
//! matching fault-free run, across kill/resume histories and worker
//! counts.
//!
//! Identity under panics is per job decomposition: a panicking variant
//! quarantines the rest of its (file, shard) job, and the shard count
//! is pinned to the worker count the journal was created with. The
//! reference for each worker count is therefore the in-memory parallel
//! run at that same count (which shares the decomposition), not the
//! serial run.

use proptest::prelude::*;
use spe::corpus::{generate, seeds, CorpusConfig};
use spe::harness::checkpoint::{
    compact_journal, compact_journal_abandoned, resume_campaign, resume_campaign_with_backend,
    run_campaign_checkpointed, CampaignStatus, CheckpointOptions,
};
use spe::harness::orchestrate::{self, FaultPolicy};
use spe::harness::{
    run_campaign, run_campaign_parallel, run_campaign_parallel_with_backend, CampaignConfig,
    CampaignReport, FindingKind,
};
use spe::persist::{CorruptionReason, JournalIter, JournalReader};
use spe::simcc::backend::{BackendError, CompilerBackend, SimccBackend};
use spe::simcc::{Compiler, CompilerId, Observation};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 40,
        algorithm: spe::core::Algorithm::Paper,
        check_wrong_code: true,
        fuel: 10_000,
    }
}

fn journal_path(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("orchestrator-faults");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(format!("{tag}.journal"))
}

/// Streaming and materializing readers must agree exactly — header,
/// records, valid prefix length, and tail verdict — on healthy,
/// truncated, and bit-flipped journals alike.
fn assert_iter_matches_reader(path: &Path) {
    let contents = JournalReader::read(path).expect("materialized read");
    let mut iter = JournalIter::open(path).expect("streaming open");
    assert_eq!(iter.header(), contents.header.as_slice(), "headers differ");
    let records: Vec<Vec<u8>> = (&mut iter)
        .collect::<Result<_, _>>()
        .expect("streamed records");
    assert_eq!(records, contents.records, "record sequences differ");
    assert_eq!(iter.valid_len(), contents.valid_len, "valid prefixes differ");
    assert_eq!(
        iter.truncated_tail(),
        contents.truncated_tail,
        "tail verdicts differ"
    );
}

fn resume_to_completion(path: &Path, workers: usize) -> CampaignReport {
    for _ in 0..32 {
        match resume_campaign(
            path,
            workers,
            &CheckpointOptions {
                every: 8,
                stop_after: None,
            },
        )
        .expect("resume")
        {
            CampaignStatus::Complete(report) => return report,
            CampaignStatus::Interrupted => {}
        }
    }
    panic!("campaign did not complete within 32 resumes");
}

// ---------------------------------------------------------------------
// Worker panics.
// ---------------------------------------------------------------------

/// Whether a rendered variant is poisoned: a pure function of the
/// source bytes, so the panic fires at the same variant on every run,
/// every worker count, and every resume — the quarantine must be
/// deterministic for byte-identity to hold.
fn poisoned(source: &str) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h.is_multiple_of(31)
}

/// An in-process backend that panics on poisoned variants and defers to
/// [`SimccBackend`] on everything else.
struct PanickyBackend;

impl CompilerBackend for PanickyBackend {
    fn id(&self) -> &str {
        "panicky"
    }

    fn config_hash(&self) -> u64 {
        7
    }

    fn observe_config(
        &self,
        source: &str,
        cc: Compiler,
        wrong_code_fuel: Option<u64>,
    ) -> Result<Observation, BackendError> {
        assert!(!poisoned(source), "injected panic: poisoned variant");
        SimccBackend.observe_config(source, cc, wrong_code_fuel)
    }
}

#[test]
fn panicking_jobs_are_quarantined_and_survive_kill_resume() {
    let files = seeds::all();
    let config = config();
    for workers in [1usize, 2, 4, 16] {
        // The in-memory parallel run shares the checkpointed run's job
        // decomposition (shards_per_file = workers), so it is the exact
        // reference for this worker count.
        let reference = run_campaign_parallel_with_backend(&files, &config, &PanickyBackend, workers);
        let panicked = reference
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::JobPanicked)
            .count();
        assert!(
            panicked > 0,
            "the poisoned predicate must fire at {workers} workers for this test to mean anything"
        );

        // Uninterrupted checkpointed run: same quarantine, same report.
        let path = journal_path(&format!("panic-uninterrupted-{workers}"));
        let outcome = orchestrate::campaign_checkpointed_with_backend(
            &files,
            &config,
            workers,
            &path,
            &CheckpointOptions {
                every: 8,
                stop_after: None,
            },
            &PanickyBackend,
            &FaultPolicy::default(),
        )
        .expect("checkpointed run");
        assert!(outcome.warnings.is_empty(), "no journal faults injected");
        let report = outcome.into_report().expect("completed");
        assert_eq!(report, reference, "{workers} workers: quarantine diverged");

        // Replaying the finished journal decodes the quarantine markers
        // from disk — the JobPanicked finding round-trips.
        let replayed = resume_campaign_with_backend(
            &path,
            &PanickyBackend,
            workers,
            &CheckpointOptions::default(),
        )
        .expect("replay")
        .into_report()
        .expect("finished journal replays");
        assert_eq!(replayed, reference, "{workers} workers: replay diverged");
        std::fs::remove_file(&path).ok();

        // Kill mid-campaign, then resume (under a rotated worker count;
        // the decomposition is pinned by the manifest): the panics
        // re-fire at the same variants and the report cannot drift.
        let path = journal_path(&format!("panic-killed-{workers}"));
        let status = orchestrate::campaign_checkpointed_with_backend(
            &files,
            &config,
            workers,
            &path,
            &CheckpointOptions {
                every: 4,
                stop_after: Some(25),
            },
            &PanickyBackend,
            &FaultPolicy::default(),
        )
        .expect("checkpointed run")
        .status;
        let resume_workers = [2usize, 4, 16, 1][[1usize, 2, 4, 16]
            .iter()
            .position(|&w| w == workers)
            .expect("worker count in table")];
        let report = match status {
            CampaignStatus::Complete(r) => r,
            CampaignStatus::Interrupted => {
                let mut status = resume_campaign_with_backend(
                    &path,
                    &PanickyBackend,
                    resume_workers,
                    &CheckpointOptions {
                        every: 4,
                        stop_after: None,
                    },
                )
                .expect("resume");
                while status.is_interrupted() {
                    status = resume_campaign_with_backend(
                        &path,
                        &PanickyBackend,
                        resume_workers,
                        &CheckpointOptions {
                            every: 4,
                            stop_after: None,
                        },
                    )
                    .expect("resume");
                }
                status.into_report().expect("complete")
            }
        };
        assert_eq!(report, reference, "{workers} workers: kill/resume diverged");
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------
// Journal append faults.
// ---------------------------------------------------------------------

#[test]
fn exhausted_append_retries_degrade_to_checkpointless_completion() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign_parallel(&files, &config, 2);
    let tag = "append-degrade";
    let path = journal_path(tag);
    // Arm far more ENOSPC failures than the policy will retry: every
    // checkpoint append fails, the sink degrades once, and the campaign
    // must still complete in memory with an identical report.
    spe::persist::journal::faults::inject_append_failures(tag, 10_000, 28);
    let outcome = orchestrate::campaign_checkpointed(
        &files,
        &config,
        2,
        &path,
        &CheckpointOptions {
            every: 2,
            stop_after: None,
        },
        &FaultPolicy {
            checkpoint_interval: None,
            max_append_retries: 2,
            retry_backoff: Duration::from_millis(1),
        },
    )
    .expect("journal creation itself is not fault-injected");
    assert_eq!(
        outcome.warnings.len(),
        1,
        "degradation is recorded exactly once: {:?}",
        outcome.warnings
    );
    assert!(
        outcome.warnings[0].contains("checkpointing disabled"),
        "warning names the degradation: {}",
        outcome.warnings[0]
    );
    assert!(
        outcome.warnings[0].contains(tag),
        "warning carries the journal path: {}",
        outcome.warnings[0]
    );
    let report = outcome.into_report().expect("degraded run still completes");
    assert_eq!(report, reference, "degradation must not change the report");

    // The journal kept its last committed state (here: just the
    // manifest) and stays resumable; the still-armed injections make the
    // resume degrade the same way, and it recomputes everything.
    assert_iter_matches_reader(&path);
    let resumed = orchestrate::resume(
        &path,
        2,
        &CheckpointOptions {
            every: 2,
            stop_after: None,
        },
        &FaultPolicy {
            checkpoint_interval: None,
            max_append_retries: 0,
            retry_backoff: Duration::from_millis(1),
        },
    )
    .expect("resume");
    assert_eq!(resumed.warnings.len(), 1, "resume degrades once too");
    assert_eq!(
        resumed.into_report().expect("resume completes"),
        reference,
        "degraded resume diverged"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn transient_append_faults_are_retried_without_a_trace() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign_parallel(&files, &config, 2);
    let tag = "append-transient";
    let path = journal_path(tag);
    // One EIO burst, shorter than the retry budget: the append must
    // succeed on retry and leave a complete journal behind.
    spe::persist::journal::faults::inject_append_failures(tag, 1, 5);
    let outcome = orchestrate::campaign_checkpointed(
        &files,
        &config,
        2,
        &path,
        &CheckpointOptions {
            every: 4,
            stop_after: None,
        },
        &FaultPolicy {
            checkpoint_interval: None,
            max_append_retries: 4,
            retry_backoff: Duration::from_millis(1),
        },
    )
    .expect("checkpointed run");
    assert!(
        outcome.warnings.is_empty(),
        "a retried transient fault is not a degradation: {:?}",
        outcome.warnings
    );
    let report = outcome.into_report().expect("completed");
    assert_eq!(report, reference);
    // The journal is complete: replaying it recomputes nothing.
    let replayed = resume_to_completion(&path, 2);
    assert_eq!(replayed, reference, "post-retry journal replay diverged");
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Journal corruption: bit flips and torn tails.
// ---------------------------------------------------------------------

/// Byte offsets of the header frame's end and the first record frame's
/// end in the journal at `path`.
fn first_frame_offsets(path: &Path) -> (u64, u64) {
    let mut iter = JournalIter::open(path).expect("open");
    let after_header = iter.valid_len();
    iter.next().expect("at least one record").expect("valid");
    (after_header, iter.valid_len())
}

#[test]
fn mid_journal_bit_flips_are_triaged_and_resume_recovers_the_prefix() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign(&files, &config);
    // Frame layout: [u32 length | u64 checksum | payload] = 12 header
    // bytes, then the payload.
    const FRAME_HEADER: u64 = 12;

    // Flip a payload byte of the *second* record: the first record
    // survives, everything after the flip is dropped, and the resume
    // recomputes exactly the lost work.
    let path = journal_path("bit-flip-payload");
    let status = run_campaign_checkpointed(
        &files,
        &config,
        4,
        &path,
        &CheckpointOptions {
            every: 1,
            stop_after: Some(40),
        },
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted());
    let (_, first_record_end) = first_frame_offsets(&path);
    let mut bytes = std::fs::read(&path).expect("journal bytes");
    let flip = usize::try_from(first_record_end + FRAME_HEADER + 2).expect("offset fits");
    assert!(bytes.len() > flip + 1, "journal long enough to flip");
    bytes[flip] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write flipped journal");

    let mut iter = JournalIter::open(&path).expect("open");
    for record in &mut iter {
        record.expect("prefix records stay valid");
    }
    let corruption = iter.corruption().expect("flip detected");
    assert_eq!(
        corruption.offset, first_record_end,
        "triage points at the flipped frame"
    );
    assert_eq!(corruption.reason, CorruptionReason::ChecksumMismatch);
    assert!(iter.truncated_tail(), "bytes after the flip are dropped");
    assert_iter_matches_reader(&path);
    drop(iter);
    let report = resume_to_completion(&path, 4);
    assert_eq!(report, reference, "bit-flipped journal resume diverged");
    std::fs::remove_file(&path).ok();

    // Flip the high byte of a frame *length* field instead: triaged as
    // an oversized length, same recovery.
    let path = journal_path("bit-flip-length");
    let status = run_campaign_checkpointed(
        &files,
        &config,
        4,
        &path,
        &CheckpointOptions {
            every: 1,
            stop_after: Some(40),
        },
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted());
    let (after_header, _) = first_frame_offsets(&path);
    let mut bytes = std::fs::read(&path).expect("journal bytes");
    let flip = usize::try_from(after_header + 3).expect("offset fits");
    bytes[flip] |= 0xff; // length's most significant byte: > 1 GiB cap
    std::fs::write(&path, &bytes).expect("write flipped journal");

    let mut iter = JournalIter::open(&path).expect("open");
    assert!(iter.next().is_none(), "first record is now invalid");
    let corruption = iter.corruption().expect("flip detected");
    assert_eq!(corruption.offset, after_header);
    assert!(
        matches!(corruption.reason, CorruptionReason::OversizedLength(_)),
        "length flips triage as oversized: {:?}",
        corruption.reason
    );
    assert_iter_matches_reader(&path);
    drop(iter);
    let report = resume_to_completion(&path, 4);
    assert_eq!(report, reference, "length-flipped journal resume diverged");
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------

fn compaction_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().expect("file name").to_os_string();
    name.push(".compact-tmp");
    path.with_file_name(name)
}

#[test]
fn a_kill_during_compaction_leaves_the_original_resumable() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign(&files, &config);
    let path = journal_path("compact-killed");
    let status = run_campaign_checkpointed(
        &files,
        &config,
        4,
        &path,
        &CheckpointOptions {
            every: 1,
            stop_after: Some(60),
        },
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted());
    let original = std::fs::read(&path).expect("journal bytes");

    // "Kill" the compaction right before its atomic rename: the
    // original is byte-for-byte untouched, only a stray tmp remains.
    let stats = compact_journal_abandoned(&path).expect("abandoned compaction");
    assert_eq!(
        std::fs::read(&path).expect("journal bytes"),
        original,
        "an abandoned compaction must not touch the original"
    );
    let tmp = compaction_tmp(&path);
    assert!(tmp.exists(), "the stray tmp file is left behind");
    assert!(
        stats.frames_after < stats.frames_before,
        "every-variant cadence leaves superseded frames to fold: {stats:?}"
    );
    let report = resume_to_completion(&path, 4);
    assert_eq!(report, reference, "post-abandonment resume diverged");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&tmp).ok();
}

#[test]
fn compaction_folds_frames_and_preserves_resume_identity() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign(&files, &config);
    let path = journal_path("compact-complete");
    let status = run_campaign_checkpointed(
        &files,
        &config,
        4,
        &path,
        &CheckpointOptions {
            every: 1,
            stop_after: Some(60),
        },
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted());

    let stats = compact_journal(&path).expect("compaction");
    assert!(
        stats.frames_after < stats.frames_before && stats.bytes_after < stats.bytes_before,
        "compaction shrinks an every-variant journal: {stats:?}"
    );
    assert!(
        !compaction_tmp(&path).exists(),
        "the tmp file was renamed over the original"
    );
    assert_iter_matches_reader(&path);

    // Compaction is idempotent: the live state is already one frame per
    // job, so a second pass folds nothing further.
    let again = compact_journal(&path).expect("re-compaction");
    assert_eq!(
        again.frames_after, again.frames_before,
        "a compacted journal is a fixed point: {again:?}"
    );

    let report = resume_to_completion(&path, 4);
    assert_eq!(report, reference, "post-compaction resume diverged");

    // Compacting the *finished* journal keeps the completion marker:
    // replay still short-circuits without recomputing.
    let stats = compact_journal(&path).expect("compacting a finished journal");
    assert!(stats.frames_after <= stats.frames_before);
    let replayed = resume_to_completion(&path, 4);
    assert_eq!(replayed, reference, "compacted finished journal diverged");
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The compaction property: for random corpora, kill points and
    /// cadences, kill → compact → resume(s) → completion reproduces the
    /// uninterrupted serial report byte-for-byte — and the streaming
    /// reader agrees with the materializing reader on every journal the
    /// sequence produces.
    #[test]
    fn compaction_preserves_kill_resume_identity(
        seed in 0u64..2_000,
        stop in 1u64..100,
        every in 1u64..16,
        workers_idx in 0usize..4,
    ) {
        let workers = [1usize, 2, 4, 16][workers_idx];
        let files = generate(&CorpusConfig { files: 2, seed });
        let config = config();
        let reference = run_campaign(&files, &config);
        let path = journal_path(&format!("prop-compact-{seed}-{stop}-{every}-{workers}"));
        let status = run_campaign_checkpointed(
            &files,
            &config,
            workers,
            &path,
            &CheckpointOptions { every, stop_after: Some(stop) },
        ).expect("checkpointed run");
        let report = match status {
            CampaignStatus::Complete(r) => r,
            CampaignStatus::Interrupted => {
                assert_iter_matches_reader(&path);
                let before = compact_journal(&path).expect("compaction");
                prop_assert!(before.frames_after <= before.frames_before);
                assert_iter_matches_reader(&path);
                resume_to_completion(&path, workers)
            }
        };
        prop_assert_eq!(report, reference);
        std::fs::remove_file(&path).ok();
    }
}
