//! Byte-identity of the incremental (splice-don't-reparse) oracle path.
//!
//! The campaign entry points keep the historical round-trip code intact
//! — render → lex → parse → compile for every variant — and run the
//! incremental path next to it, so these tests are a real
//! two-implementation comparison: for every corpus seed and every
//! enumeration algorithm, campaigns through the splice cache
//! (`spe::simcc::incremental`) must be **equal in every field** to the
//! round trip — serial, at 1/2/4/16 workers, in wrong-code and
//! compile-only modes, and through kill/resume checkpoint cycles that
//! *alternate* oracle paths across the kill points (the two strategies
//! share one journal identity, so mixing them must be invisible).

use proptest::prelude::*;
use spe::core::Algorithm;
use spe::corpus::{generate, seeds, CorpusConfig};
use spe::harness::checkpoint::{
    resume_campaign_with_path, run_campaign_checkpointed_with_path, CheckpointOptions,
};
use spe::harness::{
    run_campaign_parallel_with_path, run_campaign_with_path, CampaignConfig, OraclePath,
};
use spe::simcc::{Compiler, CompilerId};

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Paper,
    Algorithm::Canonical,
    Algorithm::Orbit,
    Algorithm::Naive,
];

fn campaign_config(algorithm: Algorithm, check_wrong_code: bool) -> CampaignConfig {
    CampaignConfig {
        // Two configurations sharing -O2 so the pipeline memo has
        // something to collapse, plus distinct levels on both sides.
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 2),
            Compiler::new(CompilerId::clang(390), 2),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 30,
        algorithm,
        check_wrong_code,
        fuel: 10_000,
    }
}

/// Every corpus seed × every algorithm × both oracle modes: the
/// incremental report equals the round trip, serially and at every
/// worker count. Compile-only mode matters here — it exercises the
/// incremental path's lazy pipeline contract (the pipeline is skipped
/// entirely for variants with no triggered performance defect).
#[test]
fn incremental_matches_round_trip_on_all_seeds_and_algorithms() {
    let files = seeds::all();
    for algorithm in ALGORITHMS {
        for check_wrong_code in [true, false] {
            let config = campaign_config(algorithm, check_wrong_code);
            let round_trip = run_campaign_with_path(&files, &config, OraclePath::RoundTrip);
            assert_eq!(
                run_campaign_with_path(&files, &config, OraclePath::Incremental),
                round_trip,
                "serial diverged: {algorithm:?} wrong_code={check_wrong_code}"
            );
            for workers in [1usize, 2, 4, 16] {
                assert_eq!(
                    run_campaign_parallel_with_path(
                        &files,
                        &config,
                        workers,
                        OraclePath::Incremental
                    ),
                    round_trip,
                    "{workers} workers diverged: {algorithm:?} wrong_code={check_wrong_code}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn incremental_campaigns_are_byte_identical_to_round_trip(seed in 0u64..5_000) {
        let files = generate(&CorpusConfig { files: 3, seed });
        for algorithm in ALGORITHMS {
            let config = campaign_config(algorithm, true);
            let round_trip = run_campaign_with_path(&files, &config, OraclePath::RoundTrip);
            prop_assert_eq!(
                &run_campaign_with_path(&files, &config, OraclePath::Incremental),
                &round_trip
            );
            for workers in [1usize, 2, 4, 16] {
                prop_assert_eq!(
                    &run_campaign_parallel_with_path(
                        &files,
                        &config,
                        workers,
                        OraclePath::Incremental
                    ),
                    &round_trip
                );
            }
        }
    }
}

/// Kill/resume with the oracle path *alternating* across kill points:
/// a journal written incrementally resumes on the round trip and vice
/// versa, at varying worker counts, and the converged report equals an
/// uninterrupted round-trip run. This is the strongest statement of the
/// splice-identity lemma — replayed frames from one path mix with the
/// other path's recomputed suffix at arbitrary variant boundaries.
#[test]
fn killed_and_resumed_campaign_alternates_oracle_paths() {
    let files = seeds::all();
    let config = campaign_config(Algorithm::Paper, true);
    let reference = run_campaign_with_path(&files, &config, OraclePath::RoundTrip);
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("oracle-identity");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let journal = dir.join("campaign.journal");

    let mut status = run_campaign_checkpointed_with_path(
        &files,
        &config,
        4,
        &journal,
        &CheckpointOptions {
            every: 16,
            stop_after: Some(40),
        },
        OraclePath::Incremental,
    )
    .expect("checkpointed run");
    assert!(status.is_interrupted(), "stop_after should have fired");
    let mut cycles = 0;
    while status.is_interrupted() {
        cycles += 1;
        assert!(cycles < 100, "resume never converged");
        let path = if cycles % 2 == 0 {
            OraclePath::Incremental
        } else {
            OraclePath::RoundTrip
        };
        status = resume_campaign_with_path(
            &journal,
            1 + cycles % 3,
            &CheckpointOptions {
                every: 16,
                stop_after: Some(60),
            },
            path,
        )
        .expect("resume");
    }
    let report = status.into_report().expect("complete");
    assert_eq!(
        report, reference,
        "path-alternating kill/resume diverged from the round trip"
    );
}
