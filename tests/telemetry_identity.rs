//! Telemetry determinism suite: every sink is write-only, so an
//! instrumented campaign must produce a `CampaignReport` byte-identical
//! to the same campaign under the default `NullSink` — at every worker
//! count, and across a kill/resume cycle. Each check also asserts the
//! recorder actually observed the run (non-zero variant counter), so a
//! silently-uninstalled sink cannot fake a pass.
//!
//! The global sink is process-wide state, so every test (and every
//! proptest case) serializes through one mutex.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use spe::corpus::{generate, seeds, CorpusConfig};
use spe::harness::checkpoint::{
    resume_campaign, run_campaign_checkpointed, CampaignStatus, CheckpointOptions,
};
use spe::harness::{run_campaign_parallel, CampaignConfig, CampaignReport};
use spe::simcc::{Compiler, CompilerId};
use spe::telemetry::{names, Recorder};

/// Serializes access to the process-wide telemetry sink.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(485), 0),
            Compiler::new(CompilerId::gcc(485), 3),
            Compiler::new(CompilerId::clang(360), 3),
        ],
        budget: 20,
        algorithm: spe::core::Algorithm::Paper,
        check_wrong_code: false,
        fuel: 10_000,
    }
}

fn workload(seed: u64) -> Vec<spe::corpus::TestFile> {
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig { files: 6, seed }));
    files
}

/// Runs `f` with a fresh global [`Recorder`] installed, restoring the
/// previous sink afterwards; returns the result and the recorder.
fn with_recorder<T>(f: impl FnOnce() -> T) -> (T, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::new());
    let prev = spe::telemetry::install_recorder(recorder.clone(), Vec::new());
    let out = f();
    spe::telemetry::uninstall_recorder(prev);
    (out, recorder)
}

#[test]
fn instrumented_reports_are_byte_identical_at_every_worker_count() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let files = workload(7);
    let config = campaign_config();
    let baseline = run_campaign_parallel(&files, &config, 1);
    for workers in [1usize, 2, 4, 16] {
        let (instrumented, recorder) =
            with_recorder(|| run_campaign_parallel(&files, &config, workers));
        assert_eq!(
            instrumented, baseline,
            "{workers}-worker instrumented report diverged from the NullSink baseline"
        );
        assert!(
            recorder.counter_value(names::VARIANTS) > 0,
            "{workers}-worker run recorded no variants — instrumentation not live"
        );
    }
}

#[test]
fn instrumented_kill_resume_cycle_is_byte_identical() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let files = workload(11);
    let config = campaign_config();
    let reference = run_campaign_parallel(&files, &config, 2);
    let resume_instrumented = |workers: usize| -> (CampaignReport, Arc<Recorder>) {
        let path = std::env::temp_dir().join(format!(
            "spe-telemetry-identity-{}-{workers}.journal",
            std::process::id()
        ));
        let (report, recorder) = with_recorder(|| {
            let stop_after = (reference.variants_tested
                / config.compilers.len().max(1) as u64
                / 2)
            .max(1);
            let status = run_campaign_checkpointed(
                &files,
                &config,
                workers,
                &path,
                &CheckpointOptions {
                    every: 16,
                    stop_after: Some(stop_after),
                },
            )
            .expect("journal is writable");
            assert!(
                matches!(status, CampaignStatus::Interrupted),
                "kill budget must preempt the campaign"
            );
            resume_campaign(&path, workers, &CheckpointOptions::default())
                .expect("journal resumes")
                .into_report()
                .expect("resume completes")
        });
        std::fs::remove_file(&path).ok();
        (report, recorder)
    };
    for workers in [1usize, 4] {
        let (resumed, recorder) = resume_instrumented(workers);
        assert_eq!(
            resumed, reference,
            "{workers}-worker instrumented kill/resume diverged"
        );
        assert!(
            recorder.counter_value(names::VARIANTS) > 0,
            "kill/resume cycle recorded no variants"
        );
        assert!(
            recorder.counter_value(names::JOURNAL_APPENDS) > 0,
            "checkpointed run recorded no journal appends"
        );
    }
}

/// Per-verdict attribution survives the incremental (batched) oracle
/// path: the default campaign entry points run on the splice cache, yet
/// every variant must still land exactly one sample in its verdict's
/// `oracle_ns.*` histogram. The workload is sized so each verdict class
/// actually occurs, pinning the classification (not just the totals),
/// and the sample/counter arithmetic proves one-sample-per-variant:
/// every sample except `unsupported` tested all configurations.
#[test]
fn incremental_oracle_attribution_is_per_variant() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let files = workload(7);
    let config = CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 200,
        algorithm: spe::core::Algorithm::Paper,
        check_wrong_code: true,
        fuel: 10_000,
    };
    let (_report, recorder) = with_recorder(|| run_campaign_parallel(&files, &config, 4));
    let snap = recorder.snapshot();
    let count = |verdict: &str| {
        snap.histograms
            .get(&format!("{}{verdict}", names::ORACLE_NS_PREFIX))
            .map_or(0, |h| h.count)
    };
    for verdict in ["clean", "crash", "wrong_code", "ub_skip"] {
        assert!(count(verdict) > 0, "verdict {verdict} never observed");
    }
    let samples: u64 = names::ORACLE_VERDICTS.iter().map(|v| count(v)).sum();
    let untested = count("unsupported");
    assert_eq!(
        recorder.counter_value(names::VARIANTS),
        (samples - untested) * config.compilers.len() as u64,
        "histogram samples must account for every variant exactly once"
    );
    // The default path is incremental: delta splices must dominate, with
    // one full (re)splice per (file, shard) job, and every spliced
    // variant is one verdict sample (no fallback on this corpus).
    let hits = recorder.counter_value(names::ORACLE_SPLICE_HITS);
    let misses = recorder.counter_value(names::ORACLE_SPLICE_MISSES);
    assert!(hits > misses, "delta splices must dominate: {hits} vs {misses}");
    assert_eq!(hits + misses, samples, "every sample came off the splice cache");
    assert!(
        recorder.counter_value(names::ORACLE_PIPELINE_MEMO_HITS) > 0,
        "same-opt configurations never shared a pipeline run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random corpus seeds and worker widths, instrumentation never
    /// changes the report: the recorder is write-only by construction
    /// and this pins it.
    #[test]
    fn instrumentation_never_perturbs_reports(seed in 0u64..5_000, workers in 1usize..6) {
        let _guard = TELEMETRY_LOCK.lock().unwrap();
        let files = workload(seed);
        let config = campaign_config();
        let baseline = run_campaign_parallel(&files, &config, 1);
        let (instrumented, recorder) =
            with_recorder(|| run_campaign_parallel(&files, &config, workers));
        prop_assert_eq!(instrumented, baseline);
        prop_assert!(recorder.counter_value(names::VARIANTS) > 0);
    }
}
