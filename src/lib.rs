//! Facade crate for the SPE workspace — re-exports every public crate.
//!
//! See the workspace `README.md` for an overview; the examples under
//! `examples/` and integration tests under `tests/` exercise this API.

pub use spe_bignum as bignum;
pub use spe_combinatorics as combinatorics;
pub use spe_core as core;
pub use spe_corpus as corpus;
pub use spe_harness as harness;
pub use spe_minic as minic;
pub use spe_persist as persist;
pub use spe_reduce as reduce;
pub use spe_report as report;
pub use spe_simcc as simcc;
pub use spe_skeleton as skeleton;
pub use spe_subproc as subproc;
pub use spe_telemetry as telemetry;
pub use spe_while as while_lang;
