//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter`,
//! * integer ranges and tuples of strategies as strategies,
//! * [`collection::vec`] for vectors of strategy-generated elements.
//!
//! Differences from real proptest: failing cases are **not shrunk** — the
//! panic carries the case number, and streams are deterministic (seeded from
//! the test name), so failures reproduce exactly under `cargo test`.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the exponential
            // brute-force oracles in this workspace fast on CI.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test random stream (SplitMix64 over an FNV-1a hash
    /// of the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the stream for a named test.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: if h == 0 { 0x5EED } else { h },
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            (self.next_u64() as u128) << 64 | self.next_u64() as u128
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, regenerating until one passes.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.whence
            );
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let r = rng.next_u128() % span;
                    (self.start as u128).wrapping_add(r) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = rng.next_u128() % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<u128> {
        type Value = u128;

        fn sample(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            self.start + rng.next_u128() % span
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with strategy-generated elements and a sampled
    /// length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` with length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u128;
            let len = self.size.start + (rng.next_u64() as u128 % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry macro. Accepts an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(arg in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __proptest_case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (deterministic seed: test name)",
                            stringify!($name), __proptest_case + 1, config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` that also works inside property bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that also works inside property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that also works inside property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u128..u128::MAX).sample(&mut rng);
            assert!(w < u128::MAX);
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = TestRng::deterministic("map_filter_compose");
        let strat = (0usize..100)
            .prop_map(|v| v * 2)
            .prop_filter("multiples of 4", |v| v % 4 == 0);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert_eq!(v % 4, 0);
            assert!(v < 200);
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = TestRng::deterministic("vec_strategy_length_in_range");
        let strat = crate::collection::vec((0usize..3, 1usize..5), 0..4);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 4);
            for (a, b) in v {
                assert!(a < 3);
                assert!((1..5).contains(&b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
