//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the benchmark-definition API this workspace uses — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`criterion_group!`] /
//! [`criterion_main!`], and [`black_box`] — backed by a simple wall-clock
//! measurement loop: per sample the routine runs once and the minimum,
//! mean and maximum sample times are reported. No statistical analysis,
//! HTML reports or regression tracking; output is one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-sample durations, filled by [`Bencher::iter`].
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once per sample (after one untimed warm-up) and
    /// records wall-clock durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.times.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("{label:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    let min = *b.times.iter().min().expect("non-empty");
    let max = *b.times.iter().max().expect("non-empty");
    println!(
        "{label:<50} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
        min,
        mean,
        max,
        b.times.len()
    );
}

/// Collection of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted and ignored (the shim reports raw times only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Defines a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.samples, f);
        self
    }

    /// Defines a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group. Default sample count is 10, matching criterion's
    /// floor and keeping the shim quick.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Defines an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), 10, f);
        self
    }
}

/// Declares a group function calling each benchmark with one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` executes harness-less bench binaries with
            // `--test`; measuring there would only slow the suite down.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn api_surface_compiles_and_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("ungrouped", |b| b.iter(|| black_box(1 + 1)));
    }
}
