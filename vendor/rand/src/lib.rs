//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements exactly the API surface the workspace uses: [`Rng::gen_range`]
//! over half-open and inclusive integer ranges, [`Rng::gen_bool`], and
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`]. The
//! generator is a xorshift64* variant seeded through SplitMix64 — not
//! cryptographic, but fast and statistically fine for test-corpus
//! generation. Streams are stable across runs and platforms, which the
//! corpus generator relies on for reproducibility.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 random bits give a uniform float in [0, 1).
        let bits = self.next_u64() >> 11;
        (bits as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + num_bound::One> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_half_open(rng, lo, num_bound::One::add_one(hi))
    }
}

mod num_bound {
    /// Successor helper for inclusive-range sampling.
    pub trait One: Copy {
        fn add_one(self) -> Self;
    }
    macro_rules! impl_one {
        ($($t:ty),*) => {$(
            impl One for $t {
                fn add_one(self) -> Self {
                    self.checked_add(1).expect("gen_range: inclusive range ending at type max")
                }
            }
        )*};
    }
    impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64* with
    /// SplitMix64 seeding).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer guarantees a non-zero, well-mixed state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x4d59_5df4_d0f3_3173 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(99);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }
}
